"""Vectorized automata kernels over integer bitmasks.

The :class:`BitsetBackend` implements the backend protocol
(:mod:`repro.automata.backend`) with set-at-a-time evaluation, the move
derivative-style formulations exploit: an NFA state *set* is a single
Python ``int`` (bit ``i`` = state ``i``), the transition relation is a
table of per-minterm bitset rows, and the hot constructions become
bitwise frontier propagation:

* **ε-closure** is a transitive-closure table computed once per
  machine; closing a set is one ``OR`` per member bit instead of a
  worklist of Python sets per step.
* **Subset construction** steps a subset by OR-ing the (ε-closed)
  destination rows of its member bits, grouped per minterm of the
  interval alphabet.  Subsets intern as plain ints.
* **Product** intersects edge labels by AND-ing precomputed minterm
  masks — one machine-word op replacing an interval-merge — while
  walking the exact pair worklist of the reference kernel, so the
  output is *structurally identical* (same states, same intern order,
  same bridge tags and provenance).
* **Hopcroft** refines an integer partition array (element/location/
  block-index arrays with marked-prefix splitting and a smaller-half
  rule generalized to multi-way splits) over sparse per-state move
  rows whose labels are minterm masks, splitting on every distinct
  incoming mask of a splitter block at once.
* **Inclusion** runs the on-the-fly pair search with both frontiers as
  ints.

Everything compiles from and back to the shared
:class:`~repro.automata.nfa.Nfa` / :class:`~repro.automata.dfa.Dfa`
types; no caller ever sees a bitmask.  Observability counters are
emitted as batched totals — one ``visit_states(n)`` per construction
instead of the reference kernels' per-item increments — but the
*totals* are identical (same subsets interned, same pairs walked, same
states refined), so serial counter snapshots stay backend-independent
(pinned by ``tests/backend/``).

``numpy`` is deliberately not required: Python's arbitrary-precision
ints already vectorize the OR/AND frontier work, machines regularly
exceed 64 states (where fixed-width arrays would need chunking), and
the container baseline must not grow dependencies.  A numpy or native
kernel can slot in behind the same protocol later (docs/BACKENDS.md).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import Iterator, Optional

from .. import obs
from .charset import CharSet, minterms
from .dfa import Dfa
from .nfa import Edge, Nfa

__all__ = ["BitsetBackend"]


def _bits(mask: int) -> Iterator[int]:
    """Iterate the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class _Minterms:
    """A minterm refinement of a label collection, with memoized maps
    between :class:`CharSet` labels and minterm bitmasks."""

    __slots__ = ("blocks", "reps", "full", "uncovered", "_label_masks", "_charsets")

    def __init__(self, labels: list[CharSet], universe: CharSet) -> None:
        self.blocks = minterms(labels)
        self.reps = [block.min_char() for block in self.blocks]
        self.full = (1 << len(self.blocks)) - 1
        covered: list[tuple[int, int]] = []
        for block in self.blocks:
            covered.extend(block.ranges)
        self.uncovered = universe - CharSet(covered)
        self._label_masks: dict[CharSet, int] = {}
        self._charsets: dict[int, CharSet] = {}

    def label_mask(self, label: CharSet) -> int:
        """The bitmask of minterm blocks whose union is ``label``.

        Blocks are disjoint single intervals sorted by position (see
        :func:`~repro.automata.charset.minterms`) and each is entirely
        inside or outside any input label, so the blocks covered by one
        of ``label``'s ranges form the contiguous run of ``reps``
        falling inside it — two bisects per range, not a sweep of all
        blocks.
        """
        mask = self._label_masks.get(label)
        if mask is None:
            mask = 0
            reps = self.reps
            for lo, hi in label.ranges:
                i = bisect_left(reps, lo)
                j = bisect_right(reps, hi)
                if j > i:
                    mask |= (1 << j) - (1 << i)
            self._label_masks[label] = mask
        return mask

    def charset(self, mask: int) -> CharSet:
        """The union of the minterm blocks selected by ``mask``."""
        found = self._charsets.get(mask)
        if found is None:
            ranges: list[tuple[int, int]] = []
            for k in _bits(mask):
                ranges.extend(self.blocks[k].ranges)
            found = CharSet(ranges)
            self._charsets[mask] = found
        return found


#: Value-keyed memo of minterm spaces.  Every kernel compiles its
#: operands against a minterm refinement of their labels, and the same
#: machines flow through many kernel calls per solve (quotient
#: fixpoints, repeated inclusion checks), so the partitions repeat
#: heavily.  Keyed purely by (universe, label set) — block order is
#: canonical (sorted by position) — the memo is semantically invisible:
#: it only skips recomputing a deterministic pure function, so the
#: backend stays stateless in the sense the protocol requires (worker
#: processes simply grow their own).  Bounded by wholesale clearing,
#: which costs at most one recomputation per retained space.
_SPACE_MEMO_LIMIT = 1024
_space_memo: dict[tuple, _Minterms] = {}


def _minterm_space(labels: list[CharSet], universe: CharSet) -> _Minterms:
    """The (memoized) minterm space of a label collection.

    Duplicate labels do not change the partition, so the memo keys on
    the label *set*; the shared instance also accumulates its
    ``label_mask``/``charset`` memos across calls, which is where most
    of the win comes from on repeat machines.
    """
    key = (universe, frozenset(labels))
    space = _space_memo.get(key)
    if space is None:
        if len(_space_memo) >= _SPACE_MEMO_LIMIT:
            _space_memo.clear()
        space = _Minterms(labels, universe)
        _space_memo[key] = space
    return space


class _Compiled:
    """A bitset view of one NFA over a shared minterm space.

    ``rows[i]`` is a sorted list of ``(minterm index, ε-closed
    destination mask)`` pairs — the sparse transition row of state bit
    ``i``; ``closure[i]`` is the ε-closure of state ``i`` as a mask.
    """

    __slots__ = ("index", "closure", "rows", "start_mask", "finals_mask")

    def __init__(self, nfa: Nfa, space: _Minterms) -> None:
        states = sorted(nfa.states)
        index = {state: i for i, state in enumerate(states)}
        self.index = index
        n = len(states)

        eps_adj = [0] * n
        for i, state in enumerate(states):
            for edge in nfa.out_edges(state):
                if edge.label is None:
                    eps_adj[i] |= 1 << index[edge.dst]
        self.closure = _transitive_closure(eps_adj)

        rows: list[list[tuple[int, int]]] = []
        label_mask = space.label_mask
        for i, state in enumerate(states):
            acc: dict[int, int] = {}
            for edge in nfa.out_edges(state):
                if edge.label is None:
                    continue
                dest = self.closure[index[edge.dst]]
                for k in _bits(label_mask(edge.label)):
                    acc[k] = acc.get(k, 0) | dest
            rows.append(sorted(acc.items()))
        self.rows = rows

        start = 0
        for state in nfa.starts:
            start |= self.closure[index[state]]
        self.start_mask = start
        finals = 0
        for state in nfa.finals:
            finals |= 1 << index[state]
        self.finals_mask = finals

    def step_rows(self, subset: int) -> dict[int, int]:
        """Per-minterm successor masks of ``subset`` (ε-closed)."""
        per_k: dict[int, int] = {}
        rows = self.rows
        mask = subset
        while mask:
            low = mask & -mask
            mask ^= low
            for k, dest in rows[low.bit_length() - 1]:
                have = per_k.get(k)
                per_k[k] = dest if have is None else have | dest
        return per_k


def _transitive_closure(adj: list[int]) -> list[int]:
    """Reflexive-transitive closure of an adjacency mask list."""
    n = len(adj)
    closure = [adj[i] | (1 << i) for i in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n):
            current = closure[i]
            acc = current
            mask = current
            while mask:
                low = mask & -mask
                mask ^= low
                acc |= closure[low.bit_length() - 1]
            if acc != current:
                closure[i] = acc
                changed = True
    return closure


class BitsetBackend:
    """Bitset/bitmask implementations of the automata backend protocol."""

    name = "bitset"

    # -- determinize ----------------------------------------------------

    def determinize(self, nfa: Nfa) -> Dfa:
        space = _minterm_space(nfa.labels_from(nfa.states), nfa.alphabet.universe)
        comp = _Compiled(nfa, space)
        no_uncovered = space.uncovered.is_empty()

        ids: dict[int, int] = {comp.start_mask: 0}
        order: list[int] = [comp.start_mask]
        transitions: dict[int, list[tuple[CharSet, int]]] = {}
        finals: set[int] = set()
        finals_mask = comp.finals_mask

        index = 0
        visited = 0
        while index < len(order):
            subset = order[index]
            state_id = index
            index += 1
            visited += subset.bit_count()
            if subset & finals_mask:
                finals.add(state_id)

            per_k = comp.step_rows(subset)
            # Intern targets in ascending minterm (= character) order —
            # the reference kernel's local-minterm sweep visits targets
            # in exactly this order, so state numbering matches it.
            by_target: dict[int, int] = {}
            hit = 0
            for k in sorted(per_k):
                target = per_k[k]
                bit = 1 << k
                hit |= bit
                target_id = ids.get(target)
                if target_id is None:
                    target_id = len(order)
                    ids[target] = target_id
                    order.append(target)
                by_target[target_id] = by_target.get(target_id, 0) | bit

            moves = [
                (target_id, space.charset(mask))
                for target_id, mask in by_target.items()
            ]
            sink_mask = space.full & ~hit
            if sink_mask or not no_uncovered:
                rest = space.charset(sink_mask)
                if not no_uncovered:
                    rest = rest | space.uncovered
                sink_id = ids.get(0)
                if sink_id is None:
                    sink_id = len(order)
                    ids[0] = sink_id
                    order.append(0)
                moves.append((sink_id, rest))
            moves.sort(key=lambda item: item[0])
            transitions[state_id] = [(label, dst) for dst, label in moves]

        obs.visit_states(visited)
        return Dfa(nfa.alphabet, transitions, 0, finals)

    # -- Hopcroft -------------------------------------------------------

    def minimize_dfa(self, dfa: Dfa) -> Dfa:
        """Symbolic Hopcroft: partition refinement with minterm-mask
        multi-way splits.

        Instead of expanding the label alphabet into ``m`` explicit
        symbols and refining per symbol (cost ``O(m · n log n)``), each
        refinement round accumulates, per predecessor of the splitter
        block, the *mask* of minterms on which it enters the splitter.
        Members of a block with different masks are behaviourally
        distinct, so one pass splits the block into one part per
        distinct mask (plus the untouched remainder) — the multi-way
        split of symbolic-automata minimization.  Each edge is touched
        ``O(log n)`` times total (generalized smaller-half rule: when a
        block splits, all parts but the largest join the worklist).
        """
        dfa_transitions = dfa.transitions
        # Reachable states, BFS order; dense renumbering.
        states = [dfa.start]
        seen = {dfa.start}
        for state in states:
            for _, dst in dfa_transitions[state]:
                if dst not in seen:
                    seen.add(dst)
                    states.append(dst)
        idx = {state: i for i, state in enumerate(states)}
        n = len(states)
        obs.visit_states(n)

        labels = [
            label for state in states for label, _ in dfa_transitions[state]
        ]
        space = _minterm_space(labels, dfa.alphabet.universe)
        if not space.uncovered.is_empty():
            raise ValueError(
                f"incomplete DFA: no move from {dfa.start} on "
                f"{space.uncovered.min_char()!r}"
            )
        full = space.full
        label_mask = space.label_mask

        # Per-state move rows as (minterm mask, dense target) — computed
        # once, reused by the in-edge index below and the quotient at
        # the end — with a completeness check on the way (the machine
        # must partition the universe at every state).
        move_rows: list[list[tuple[int, int]]] = []
        in_edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        # Labels repeat heavily across DFA rows (determinize interns
        # them per minterm mask), so an identity-keyed fast path in
        # front of the value-keyed memo skips most CharSet hashing.
        # The label is kept in the entry so a stale id can never alias.
        masks_by_id: dict[int, tuple[CharSet, int]] = {}
        for i, state in enumerate(states):
            covered = 0
            row: list[tuple[int, int]] = []
            prev_j = -1
            by_target = True
            for label, dst in dfa_transitions[state]:
                entry = masks_by_id.get(id(label))
                if entry is not None and entry[0] is label:
                    mask = entry[1]
                else:
                    mask = label_mask(label)
                    masks_by_id[id(label)] = (label, mask)
                covered |= mask
                j = idx[dst]
                if j <= prev_j:
                    by_target = False
                prev_j = j
                row.append((mask, j))
            if covered != full:
                missing = full & ~covered
                k = (missing & -missing).bit_length() - 1
                raise ValueError(
                    f"incomplete DFA: no move from {state} on "
                    f"{space.reps[k]!r}"
                )
            if not by_target:
                # Row not strictly ascending by target: merge duplicate
                # targets so each (source, target) appears once in the
                # in-edge index (the singleton-splitter fast path in
                # the refinement loop relies on that).
                merged: dict[int, int] = {}
                for mask, j in row:
                    merged[j] = merged.get(j, 0) | mask
                row = [(mask, j) for j, mask in merged.items()]
            for mask, j in row:
                in_edges[j].append((i, mask))
            move_rows.append(row)

        # The integer partition: elems holds all states grouped by
        # block, loc inverts it, [first, end) delimits each block.
        finals_members = [i for i in range(n) if states[i] in dfa.finals]
        finals_set = set(finals_members)
        nonfinal_members = [i for i in range(n) if i not in finals_set]
        elems: list[int] = []
        first: list[int] = []
        end: list[int] = []
        block_of = [0] * n
        for members in (finals_members, nonfinal_members):
            if not members:
                continue
            first.append(len(elems))
            for member in members:
                block_of[member] = len(first) - 1
                elems.append(member)
            end.append(len(elems))
        loc = [0] * n
        for position, member in enumerate(elems):
            loc[member] = position

        work: deque[int] = deque(range(len(first)))
        in_work = [True] * len(first)
        # Flat per-source accumulator (sources are dense ints): masks
        # OR in by list index, `touched_sources` remembers which slots
        # to drain — no per-edge dict hashing in the hot loop.
        acc_mask = [0] * n

        while work:
            splitter_idx = work.popleft()
            in_work[splitter_idx] = False
            touched: dict[int, dict[int, list[int]]] = {}
            lo_s = first[splitter_idx]
            if end[splitter_idx] - lo_s == 1:
                # Singleton splitter (the common case once refinement
                # gets going): each source appears at most once in the
                # target's in-edge row, so group directly — no
                # accumulator pass.
                for source, mask in in_edges[elems[lo_s]]:
                    block = block_of[source]
                    groups = touched.get(block)
                    if groups is None:
                        touched[block] = {mask: [source]}
                        continue
                    members = groups.get(mask)
                    if members is None:
                        groups[mask] = [source]
                    else:
                        members.append(source)
            else:
                # Snapshot: the splitter's members may migrate below.
                splitter = elems[lo_s : end[splitter_idx]]
                touched_sources: list[int] = []
                append_source = touched_sources.append
                for target in splitter:
                    for source, mask in in_edges[target]:
                        prior = acc_mask[source]
                        if prior:
                            acc_mask[source] = prior | mask
                        else:
                            acc_mask[source] = mask
                            append_source(source)
                for source in touched_sources:
                    mask = acc_mask[source]
                    acc_mask[source] = 0
                    block = block_of[source]
                    groups = touched.get(block)
                    if groups is None:
                        touched[block] = {mask: [source]}
                        continue
                    members = groups.get(mask)
                    if members is None:
                        groups[mask] = [source]
                    else:
                        members.append(source)
            for block, groups in touched.items():
                lo = first[block]
                hi = end[block]
                size = hi - lo
                marked = 0
                for group in groups.values():
                    marked += len(group)
                if len(groups) == 1 and marked == size:
                    continue  # every member behaves alike: no split
                # Multi-way split: pack each mask group into its own
                # slice of the block's range (the unmarked remainder
                # keeps the original block index).
                cursor = hi
                parts = [block]
                for group in groups.values():
                    cursor -= len(group)
                    for offset, source in enumerate(group):
                        i = loc[source]
                        j = cursor + offset
                        if i != j:
                            other = elems[j]
                            elems[i] = other
                            elems[j] = source
                            loc[other] = i
                            loc[source] = j
                    new_idx = len(first)
                    first.append(cursor)
                    end.append(cursor + len(group))
                    in_work.append(False)
                    for source in group:
                        block_of[source] = new_idx
                    parts.append(new_idx)
                end[block] = cursor  # remainder (may be empty)
                if cursor == lo:
                    # No unmarked remainder: the original index is an
                    # empty shell; drop it from the parts on offer.
                    parts.pop(0)
                    largest = max(
                        parts, key=lambda b: end[b] - first[b]
                    )
                    if in_work[block]:
                        # It was pending under its old extent: every
                        # part must stay pending.
                        in_work[block] = False
                        largest = -1
                else:
                    largest = (
                        -1
                        if in_work[block]
                        else max(parts, key=lambda b: end[b] - first[b])
                    )
                # Generalized smaller-half rule: everything but the
                # largest part joins the worklist; when the split block
                # was itself pending, all parts do.
                for part in parts:
                    if part != largest and not in_work[part]:
                        work.append(part)
                        in_work[part] = True

        # Quotient machine, renumbered canonically: BFS from the start
        # block with successors discovered in ascending label order (the
        # same canonical numbering language signatures use).  Moves come
        # from each block representative's move row — already merged by
        # target — not from an m-wide symbol table; fully-split empty
        # shells are simply never discovered (no state maps to them).
        charset = space.charset
        charsets_get = space._charsets.get
        finals = dfa.finals
        start_block = block_of[idx[dfa.start]]
        order_of: dict[int, int] = {start_block: 0}
        queue = [start_block]
        transitions: dict[int, list[tuple[CharSet, int]]] = {}
        new_finals: set[int] = set()
        for new_id, block in enumerate(queue):
            rep = elems[first[block]]
            acc2: dict[int, int] = {}
            for mask, j in move_rows[rep]:
                target_block = block_of[j]
                have = acc2.get(target_block)
                acc2[target_block] = mask if have is None else have | mask
            # Minterm masks of distinct targets are disjoint, so the
            # lowest set bit (= lowest character) is a unique, cheap
            # integer sort key for ascending-label order.
            moves = [
                (mask & -mask, mask, target_block)
                for target_block, mask in acc2.items()
            ]
            moves.sort()
            row: list[tuple[int, int]] = []
            for _, mask, target_block in moves:
                target_id = order_of.get(target_block)
                if target_id is None:
                    target_id = len(queue)
                    order_of[target_block] = target_id
                    queue.append(target_block)
                row.append((target_id, mask))
            row.sort()
            transitions[new_id] = [
                (
                    label
                    if (label := charsets_get(mask)) is not None
                    else charset(mask),
                    dst,
                )
                for dst, mask in row
            ]
            if states[rep] in finals:
                new_finals.add(new_id)
        return Dfa(dfa.alphabet, transitions, 0, new_finals)

    # -- product --------------------------------------------------------

    def product(self, a: Nfa, b: Nfa) -> tuple[Nfa, dict[int, tuple[int, int]]]:
        space = _minterm_space(
            a.labels_from(a.states) + b.labels_from(b.states),
            a.alphabet.universe,
        )
        eps_a, chars_a = _edge_views(a, space)
        eps_b, chars_b = _edge_views(b, space)

        out = Nfa(a.alphabet)
        ids: dict[tuple[int, int], int] = {}
        provenance: dict[int, tuple[int, int]] = {}
        worklist: list[tuple[int, int]] = []
        charset = space.charset
        charsets_get = space._charsets.get
        # Edges append straight onto the state rows (labels from the
        # minterm space are non-empty by construction, states are
        # interned just below — the add_transition guards cannot fire).
        # State allocation (a counter bump plus an empty edge row) and
        # edge construction (``tuple.__new__`` skips the NamedTuple
        # argument-binding wrapper) are likewise inlined: this walk
        # dominates product wall time.
        out_edges = out._edges
        ids_get = ids.get
        push = worklist.append
        new_edge = tuple.__new__
        next_state = 0

        for p in a.starts:
            for q in b.starts:
                pair = (p, q)
                if ids_get(pair) is None:
                    out_edges[next_state] = []
                    ids[pair] = next_state
                    provenance[next_state] = pair
                    push((pair, next_state))
                    next_state += 1
        out.starts = set(ids.values())

        # Same LIFO pair walk as the reference kernel — the output must
        # be structurally identical (see module docs) — with the label
        # intersection per edge pair reduced to one minterm-mask AND.
        # Worklist entries carry the interned id alongside the pair so
        # popping needs no dict lookup.
        pairs_visited = 0
        while worklist:
            (p, q), src = worklist.pop()
            append = out_edges[src].append
            pairs_visited += 1
            for dst, tag in eps_a[p]:
                key = (dst, q)
                state = ids_get(key)
                if state is None:
                    state = next_state
                    out_edges[state] = []
                    ids[key] = state
                    provenance[state] = key
                    push((key, state))
                    next_state += 1
                append(new_edge(Edge, (None, state, tag)))
            for dst, tag in eps_b[q]:
                key = (p, dst)
                state = ids_get(key)
                if state is None:
                    state = next_state
                    out_edges[state] = []
                    ids[key] = state
                    provenance[state] = key
                    push((key, state))
                    next_state += 1
                append(new_edge(Edge, (None, state, tag)))
            edges_b = chars_b[q]
            if edges_b:
                for mask_a, dst_a in chars_a[p]:
                    for mask_b, dst_b in edges_b:
                        both = mask_a & mask_b
                        if both:
                            key = (dst_a, dst_b)
                            state = ids_get(key)
                            if state is None:
                                state = next_state
                                out_edges[state] = []
                                ids[key] = state
                                provenance[state] = key
                                push((key, state))
                                next_state += 1
                            label = charsets_get(both)
                            if label is None:
                                label = charset(both)
                            append(new_edge(Edge, (label, state, None)))
        out._next_state = next_state
        obs.visit_states(pairs_visited)

        a_finals = a.finals
        b_finals = b.finals
        out.finals = {
            state
            for state, (p, q) in provenance.items()
            if p in a_finals and q in b_finals
        }
        return out, provenance

    # -- complement -----------------------------------------------------

    def complement(self, nfa: Nfa) -> Nfa:
        return self.determinize(nfa).complemented().to_nfa()

    # -- emptiness ------------------------------------------------------

    def is_empty(self, nfa: Nfa) -> bool:
        if not nfa.finals:
            return True
        states = sorted(nfa.states)
        index = {state: i for i, state in enumerate(states)}
        adjacency = [0] * len(states)
        for i, state in enumerate(states):
            for edge in nfa.out_edges(state):
                adjacency[i] |= 1 << index[edge.dst]
        finals_mask = 0
        for state in nfa.finals:
            finals_mask |= 1 << index[state]
        reach = 0
        for state in nfa.starts:
            reach |= 1 << index[state]
        frontier = reach
        while frontier:
            if reach & finals_mask:
                return False
            step = 0
            mask = frontier
            while mask:
                low = mask & -mask
                mask ^= low
                step |= adjacency[low.bit_length() - 1]
            frontier = step & ~reach
            reach |= frontier
        return not (reach & finals_mask)

    # -- inclusion ------------------------------------------------------

    def is_subset(self, a: Nfa, b: Nfa) -> bool:
        obs.count_operation("inclusion_check")
        if a.alphabet != b.alphabet:
            raise ValueError("cannot compare machines over different alphabets")
        with obs.span(
            "inclusion_check", states_a=a.num_states, states_b=b.num_states
        ) as sp:
            result = self._is_subset(a, b)
            sp.set("included", result)
            return result

    def _is_subset(self, a: Nfa, b: Nfa) -> bool:
        space = _minterm_space(
            a.labels_from(a.states) + b.labels_from(b.states),
            a.alphabet.universe,
        )
        comp_a = _Compiled(a, space)
        comp_b = _Compiled(b, space)
        finals_a = comp_a.finals_mask
        finals_b = comp_b.finals_mask

        start = (comp_a.start_mask, comp_b.start_mask)
        seen: set[tuple[int, int]] = {start}
        queue: deque[tuple[int, int]] = deque([start])
        visited = 0
        try:
            while queue:
                set_a, set_b = queue.popleft()
                visited += 1
                if (set_a & finals_a) and not (set_b & finals_b):
                    return False
                per_k_a = comp_a.step_rows(set_a)
                per_k_b = comp_b.step_rows(set_b)
                for k in sorted(per_k_a):
                    key = (per_k_a[k], per_k_b.get(k, 0))
                    if key not in seen:
                        seen.add(key)
                        queue.append(key)
            return True
        finally:
            obs.visit_states(visited)

    # -- universal left quotient ----------------------------------------

    def left_quotient(self, prefixes: Nfa, language: Nfa) -> Nfa:
        """Universal left quotient by packed multi-track DFA runs.

        Same construction as the reference (determinize ``language``,
        seed-search the DFA states reachable on ``prefixes``, then run
        all tracks at once accepting when every track accepts), but the
        track set is one int bitmask and the whole per-minterm successor
        family of a DFA state is one packed int (``n``-bit field per
        minterm): stepping a track set on *all* minterms at once is one
        ``OR`` per member bit.  Minterms that land on the same track
        set are merged into one transition, so the output is
        language-equal to the reference's but may have fewer edges
        (``left_quotient`` is a language-faithful kernel — see the
        backend contract).  Visit totals stay pinned to the reference:
        one per seed-search pair, one per interned track set.
        """
        if prefixes.is_empty():
            return Nfa.universal(language.alphabet)
        from .dfa import determinize

        dfa = determinize(language)
        states = sorted(dfa.transitions)
        n = len(states)
        index = {state: i for i, state in enumerate(states)}

        # Minterms over the DFA labels *and* the prefix labels: every
        # label either side uses is then an exact union of blocks.
        labels = [
            label for moves in dfa.transitions.values() for label, _ in moves
        ]
        labels.extend(
            edge.label
            for state in prefixes.states
            for edge in prefixes.out_edges(state)
            if edge.label is not None
        )
        space = _minterm_space(labels, language.alphabet.universe)
        nmt = len(space.blocks)
        label_mask = space.label_mask

        # packed[i]: minterm-indexed n-bit fields, field k holding the
        # successor bit of DFA state i on block k.  step[i][k] is the
        # same successor as a plain index (for the pair search).
        packed = [0] * n
        step = [[0] * nmt for _ in range(n)]
        for state, moves in dfa.transitions.items():
            i = index[state]
            row = step[i]
            for label, dst in moves:
                dbit = 1 << index[dst]
                didx = index[dst]
                for k in _bits(label_mask(label)):
                    packed[i] |= dbit << (k * n)
                    row[k] = didx

        # Seed search: DFA states reachable on some string of
        # ``prefixes`` — the reference's (prefix state, DFA state) pair
        # walk with label intersections as minterm-mask hits.
        visited = 0
        seeds = 0
        start_d = index[dfa.start]
        stack = [
            (p, start_d) for p in prefixes.epsilon_closure(prefixes.starts)
        ]
        seen = set(stack)
        prefix_finals = prefixes.finals
        while stack:
            p, d = stack.pop()
            visited += 1
            if p in prefix_finals:
                seeds |= 1 << d
            row = step[d]
            for edge in prefixes.out_edges(p):
                if edge.is_epsilon:
                    nxt = (edge.dst, d)
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
                else:
                    for k in _bits(label_mask(edge.label)):
                        nxt = (edge.dst, row[k])
                        if nxt not in seen:
                            seen.add(nxt)
                            stack.append(nxt)

        # Universal run: track sets intern as ints; accepting iff every
        # track is final.  The DFA is complete, so a nonempty track set
        # steps to a nonempty one on every block (total coverage).
        full_field = (1 << n) - 1
        finals_mask = 0
        for state in dfa.finals:
            finals_mask |= 1 << index[state]
        out = Nfa(language.alphabet)
        ids: dict[int, int] = {}
        worklist: list[int] = []

        def intern(tracks: int) -> int:
            sid = ids.get(tracks)
            if sid is None:
                sid = out.add_state()
                ids[tracks] = sid
                worklist.append(tracks)
            return sid

        out.starts = {intern(seeds)}
        while worklist:
            tracks = worklist.pop()
            src = ids[tracks]
            visited += 1
            if tracks and not (tracks & ~finals_mask):
                out.finals.add(src)
            acc = 0
            mask = tracks
            while mask:
                low = mask & -mask
                mask ^= low
                acc |= packed[low.bit_length() - 1]
            by_target: dict[int, int] = {}
            for k in range(nmt):
                target = (acc >> (k * n)) & full_field
                if target:
                    by_target[target] = by_target.get(target, 0) | (1 << k)
            for target, blocks in by_target.items():
                out.add_transition(src, space.charset(blocks), intern(target))
        obs.visit_states(visited)
        return out


def _edge_views(
    nfa: Nfa, space: _Minterms
) -> tuple[list[list], list[list]]:
    """Split each state's edges into ε and minterm-masked char views,
    preserving the original edge order (the product walk relies on it).

    Views are dense lists indexed by state id (states are allocated
    sequentially, so ids are small ints); states absent from the
    machine keep empty rows.
    """
    size = max(nfa.states, default=-1) + 1
    eps: list[list[tuple[int, Optional[object]]]] = [[] for _ in range(size)]
    chars: list[list[tuple[int, int]]] = [[] for _ in range(size)]
    label_mask = space.label_mask
    for state in nfa.states:
        eps_edges = eps[state]
        char_edges = chars[state]
        for edge in nfa.out_edges(state):
            if edge.label is None:
                eps_edges.append((edge.dst, edge.tag))
            else:
                char_edges.append((label_mask(edge.label), edge.dst))
    return eps, chars
