"""Finite-state transducers over symbolic alphabets.

The paper's related-work section points at Wassermann et al.'s
observation that "many common string operations can be reversed using
finite state transducers" and proposes investigating the combination as
future work (Sec. 5).  This module is that combination's substrate: a
transducer class rich enough to model PHP's string functions
(``addslashes``, ``str_replace``, ``strtolower``, character deletion),
with the two operations the analysis needs:

* :func:`image` — the forward image ``T(L)`` of a regular language;
* :func:`preimage` — the inverse image ``T⁻¹(L) = {w | T(w) ∩ L ≠ ∅}``.

Both are regular (transducers preserve regularity in either direction),
so solver results can be pushed backwards through sanitizers: if the
solver says a *sanitized* value must lie in language ``L`` to exploit a
sink, the attacker-controlled input must lie in ``preimage(T, L)`` —
which may well be empty, proving the sanitizer effective.

Transition outputs are ``(prefix, copy)`` pairs: emit the literal
``prefix``, then optionally the consumed input character.  This is
expressive enough for escaping (prefix ``"\\"``, copy) and replacement
(buffered literals) while keeping :func:`preimage` a simple product
construction.  Per-state ``final_output`` strings flush buffered text
at end of input (needed by ``replace_all``).
"""

from __future__ import annotations

from typing import Callable, Iterable, NamedTuple, Optional

from .. import obs
from .alphabet import BYTE_ALPHABET, Alphabet
from .charset import CharSet, minterms
from .nfa import Nfa

__all__ = [
    "FstEdge",
    "Fst",
    "image",
    "preimage",
    "identity",
    "char_map",
    "delete_chars",
    "escape_chars",
    "lowercase",
    "replace_all",
]


class FstEdge(NamedTuple):
    """One transducer transition.

    ``label`` is the consumed character class (never ε here — every
    edge consumes exactly one input character; insertions happen via
    ``prefix`` and ``final_output``).  On taking the edge the machine
    emits ``prefix`` and then, if ``copy``, the consumed character.
    """

    label: CharSet
    prefix: str
    copy: bool
    dst: int


class Fst:
    """A deterministic-enough letter transducer.

    The class itself does not enforce determinism; :meth:`apply`
    follows all matching edges and returns every output (sanitizer
    models are functional in practice, so the set is a singleton).
    """

    def __init__(self, alphabet: Alphabet = BYTE_ALPHABET):
        self.alphabet = alphabet
        self._next_state = 0
        self.start: int = 0
        self.finals: set[int] = set()
        self.final_output: dict[int, str] = {}
        self._edges: dict[int, list[FstEdge]] = {}

    def add_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        self._edges[state] = []
        return state

    def add_edge(
        self, src: int, label: CharSet, dst: int, prefix: str = "", copy: bool = False
    ) -> None:
        if label.is_empty():
            return
        if src not in self._edges or dst not in self._edges:
            raise ValueError("unknown transducer state")
        self._edges[src].append(FstEdge(label, prefix, copy, dst))

    def set_final(self, state: int, flush: str = "") -> None:
        self.finals.add(state)
        self.final_output[state] = flush

    def out_edges(self, state: int) -> list[FstEdge]:
        return self._edges[state]

    @property
    def num_states(self) -> int:
        return len(self._edges)

    # -- direct application (test oracle) ------------------------------

    def apply(self, text: str) -> set[str]:
        """All outputs for ``text`` (singleton for functional machines)."""
        current: set[tuple[int, str]] = {(self.start, "")}
        for ch in text:
            nxt: set[tuple[int, str]] = set()
            for state, out in current:
                for edge in self._edges[state]:
                    if ch in edge.label:
                        emitted = edge.prefix + (ch if edge.copy else "")
                        nxt.add((edge.dst, out + emitted))
            current = nxt
            if not current:
                return set()
        return {
            out + self.final_output.get(state, "")
            for state, out in current
            if state in self.finals
        }

    def apply_one(self, text: str) -> Optional[str]:
        """The unique output, or None if the input is rejected."""
        outputs = self.apply(text)
        if len(outputs) > 1:
            raise ValueError(f"transducer is not functional on {text!r}")
        return next(iter(outputs), None)

    def __repr__(self) -> str:
        edges = sum(len(v) for v in self._edges.values())
        return f"<Fst states={self.num_states} edges={edges}>"


# -- regular-language transport ------------------------------------------


def image(fst: Fst, language: Nfa) -> Nfa:
    """The forward image ``{T(w) | w ∈ L}`` as an NFA.

    Product walk over ``(fst state, nfa state)`` pairs: an FST edge
    consuming class ``c`` pairs with each NFA edge whose label overlaps
    ``c``; the product edge *emits* the FST output, which becomes a
    chain of literal transitions in the result.
    """
    obs.count_operation("fst_image")
    if fst.alphabet != language.alphabet:
        raise ValueError("alphabet mismatch between transducer and language")
    out = Nfa(fst.alphabet)
    ids: dict[tuple[int, frozenset[int]], int] = {}
    worklist: list[tuple[int, frozenset[int]]] = []

    def intern(key: tuple[int, frozenset[int]]) -> int:
        if key not in ids:
            ids[key] = out.add_state()
            worklist.append(key)
        return ids[key]

    start_key = (fst.start, language.epsilon_closure(language.starts))
    intern(start_key)
    out.starts = {ids[start_key]}

    while worklist:
        key = worklist.pop()
        fst_state, nfa_states = key
        src = ids[key]
        obs.visit_states(1)
        if fst_state in fst.finals and nfa_states & language.finals:
            flush = fst.final_output.get(fst_state, "")
            _emit_string(out, src, flush, make_final=True)
        for edge in fst.out_edges(fst_state):
            # Split the consumed class by the language's own labels so
            # COPY outputs stay class-uniform.
            labels = [
                nfa_edge.label & edge.label
                for state in nfa_states
                for nfa_edge in language.out_edges(state)
                if nfa_edge.label is not None
                and not (nfa_edge.label & edge.label).is_empty()
            ]
            for block in minterms(labels):
                target = language.step(nfa_states, block.min_char())
                if not target:
                    continue
                dst = intern((edge.dst, target))
                cursor = _emit_string(out, src, edge.prefix)
                if edge.copy:
                    out.add_transition(cursor, block, dst)
                else:
                    if cursor == src and not edge.prefix:
                        out.add_epsilon(cursor, dst)
                    else:
                        out.add_epsilon(cursor, dst)
    return out.trim()


def _emit_string(nfa: Nfa, src: int, text: str, make_final: bool = False) -> int:
    """Append a literal chain for ``text`` starting at ``src``;
    returns the last state (marked final when requested)."""
    cursor = src
    for ch in text:
        nxt = nfa.add_state()
        nfa.add_char(cursor, ch, nxt)
        cursor = nxt
    if make_final:
        nfa.finals.add(cursor)
    return cursor


def preimage(fst: Fst, language: Nfa) -> Nfa:
    """The inverse image ``{w | T(w) ∩ L ≠ ∅}`` as an NFA.

    Product walk over ``(fst state, nfa state)``: taking an FST edge
    requires the *output* (prefix, then optionally the copied input
    character) to be consumable by the language machine.  Copy edges
    constrain the consumed input class to characters the language can
    also read at that point, which keeps everything symbolic.
    """
    obs.count_operation("fst_preimage")
    if fst.alphabet != language.alphabet:
        raise ValueError("alphabet mismatch between transducer and language")
    out = Nfa(fst.alphabet)
    ids: dict[tuple[int, int], int] = {}
    worklist: list[tuple[int, int]] = []

    def intern(key: tuple[int, int]) -> int:
        if key not in ids:
            ids[key] = out.add_state()
            worklist.append(key)
        return ids[key]

    for q in language.epsilon_closure(language.starts):
        intern((fst.start, q))
    out.starts = set(ids.values())

    while worklist:
        key = worklist.pop()
        fst_state, nfa_state = key
        src = ids[key]
        obs.visit_states(1)

        if fst_state in fst.finals:
            flush = fst.final_output.get(fst_state, "")
            for landing in _consume(language, {nfa_state}, flush):
                if landing in language.finals:
                    out.finals.add(src)
                    break

        for edge in fst.out_edges(fst_state):
            after_prefix = _consume(language, {nfa_state}, edge.prefix)
            if not after_prefix:
                continue
            if edge.copy:
                for mid in after_prefix:
                    for nfa_edge in language.out_edges(mid):
                        if nfa_edge.label is None:
                            continue
                        both = nfa_edge.label & edge.label
                        if both.is_empty():
                            continue
                        for landing in language.epsilon_closure([nfa_edge.dst]):
                            out.add_transition(
                                src, both, intern((edge.dst, landing))
                            )
            else:
                for landing in after_prefix:
                    out.add_transition(
                        src, edge.label, intern((edge.dst, landing))
                    )
    return out.trim()


def _consume(language: Nfa, states: Iterable[int], text: str) -> frozenset[int]:
    """NFA states reachable from ``states`` by consuming ``text``."""
    current = language.epsilon_closure(states)
    for ch in text:
        if not current:
            break
        current = language.step(current, ch)
    return frozenset(current)


# -- builders ---------------------------------------------------------------


def identity(alphabet: Alphabet = BYTE_ALPHABET) -> Fst:
    """The identity transducer ``T(w) = w``."""
    fst = Fst(alphabet)
    state = fst.add_state()
    fst.add_edge(state, alphabet.universe, state, copy=True)
    fst.set_final(state)
    return fst


def char_map(
    mapping: Callable[[int], Optional[str]], alphabet: Alphabet = BYTE_ALPHABET
) -> Fst:
    """A per-character rewriting transducer.

    ``mapping(codepoint)`` returns the replacement string for that
    character, or None to copy it unchanged.  Characters mapping to the
    same replacement are merged into one symbolic edge.
    """
    fst = Fst(alphabet)
    state = fst.add_state()
    copy_class = CharSet.empty()
    groups: dict[str, CharSet] = {}
    for cp in alphabet.universe.codepoints():
        replacement = mapping(cp)
        if replacement is None:
            copy_class = copy_class | CharSet.single(cp)
        else:
            groups[replacement] = groups.get(replacement, CharSet.empty()) | (
                CharSet.single(cp)
            )
    fst.add_edge(state, copy_class, state, copy=True)
    for replacement, cls in groups.items():
        fst.add_edge(state, cls, state, prefix=replacement, copy=False)
    fst.set_final(state)
    return fst


def delete_chars(chars: CharSet, alphabet: Alphabet = BYTE_ALPHABET) -> Fst:
    """Remove every occurrence of the given characters."""
    return char_map(lambda cp: "" if cp in chars else None, alphabet)


def escape_chars(
    chars: CharSet, escape: str = "\\", alphabet: Alphabet = BYTE_ALPHABET
) -> Fst:
    """Prefix each of ``chars`` with ``escape`` (the addslashes shape)."""
    fst = Fst(alphabet)
    state = fst.add_state()
    fst.add_edge(state, alphabet.universe - chars, state, copy=True)
    fst.add_edge(state, chars, state, prefix=escape, copy=True)
    fst.set_final(state)
    return fst


def lowercase(alphabet: Alphabet = BYTE_ALPHABET) -> Fst:
    """ASCII strtolower."""
    return char_map(
        lambda cp: chr(cp + 32) if ord("A") <= cp <= ord("Z") else None,
        alphabet,
    )


def replace_all(
    find: str, replacement: str, alphabet: Alphabet = BYTE_ALPHABET
) -> Fst:
    """PHP ``str_replace``: leftmost, non-overlapping replacement.

    KMP construction: state ``j`` means ``find[:j]`` is buffered (not
    yet emitted).  On the next matching character the buffer grows; on
    a full match the replacement is emitted and the buffer resets; on a
    mismatch the part of the buffer that can no longer start a match is
    flushed.  End of input flushes the whole buffer via
    ``final_output``.
    """
    if not find:
        raise ValueError("cannot replace the empty string")
    if not alphabet.contains_string(find) or not alphabet.contains_string(
        replacement
    ):
        raise ValueError("pattern or replacement outside the alphabet")

    fst = Fst(alphabet)
    states = [fst.add_state() for _ in range(len(find))]
    pattern_chars = CharSet.of(find)

    def kmp_state(buffered: str) -> tuple[int, str]:
        """Longest proper suffix of ``buffered`` that prefixes ``find``;
        returns (new state, flushed output)."""
        for keep in range(min(len(buffered), len(find) - 1), -1, -1):
            if find.startswith(buffered[len(buffered) - keep :]):
                return keep, buffered[: len(buffered) - keep]
        return 0, buffered

    for j, state in enumerate(states):
        # Advance on the expected character.
        expected = CharSet.single(find[j])
        if j + 1 == len(find):
            fst.add_edge(state, expected, states[0], prefix=replacement)
        else:
            fst.add_edge(state, expected, states[j + 1])
        # Any character not in the pattern at all: flush everything.
        outside = alphabet.universe - pattern_chars
        fst.add_edge(state, outside, states[0], prefix=find[:j], copy=True)
        # Pattern characters that mismatch here: KMP fallback.
        for cp in pattern_chars.codepoints():
            ch = chr(cp)
            if ch == find[j]:
                continue
            new_state, flushed = kmp_state(find[:j] + ch)
            fst.add_edge(
                state,
                CharSet.single(ch),
                states[new_state],
                prefix=flushed,
                copy=False,
            )
        fst.set_final(state, flush=find[:j])
    return fst
