"""Interval-based character sets.

Transitions in our automata are labelled with :class:`CharSet` values
rather than single characters, so a transition over the whole alphabet
(the paper's ``Σ``) costs one edge instead of 256.  A ``CharSet`` is an
immutable, normalized sequence of closed code-point intervals.

The module also provides :func:`minterms`, the partition-refinement
helper used by subset construction and complementation: given a
collection of (possibly overlapping) character sets, it returns the
coarsest partition of their union such that every input set is a union
of partition blocks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["CharSet", "minterms", "MAX_CODEPOINT"]

#: Largest code point we ever represent.  The default alphabet used by
#: the solver is the byte alphabet 0..255, but the representation is
#: agnostic and supports full Unicode.
MAX_CODEPOINT = 0x10FFFF


def _normalize(ranges: Iterable[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Sort, validate, and coalesce adjacent/overlapping intervals."""
    items = sorted((lo, hi) for lo, hi in ranges)
    merged: list[tuple[int, int]] = []
    for lo, hi in items:
        if lo > hi:
            raise ValueError(f"empty interval ({lo}, {hi})")
        if lo < 0 or hi > MAX_CODEPOINT:
            raise ValueError(f"interval ({lo}, {hi}) outside code-point range")
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


class CharSet:
    """An immutable set of characters stored as sorted closed intervals.

    Instances are hashable and support the usual set algebra.  Most
    callers construct them through the classmethods:

    >>> digits = CharSet.range("0", "9")
    >>> digits.contains("5")
    True
    >>> (digits | CharSet.of("abc")).cardinality()
    13
    """

    __slots__ = ("ranges", "_hash")

    ranges: tuple[tuple[int, int], ...]

    def __init__(self, ranges: Iterable[tuple[int, int]] = ()):
        object.__setattr__(self, "ranges", _normalize(ranges))
        object.__setattr__(self, "_hash", hash(self.ranges))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CharSet is immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls) -> "CharSet":
        """The empty character set."""
        return _EMPTY

    @classmethod
    def single(cls, char: str | int) -> "CharSet":
        """A set containing exactly one character."""
        cp = char if isinstance(char, int) else ord(char)
        return cls([(cp, cp)])

    @classmethod
    def of(cls, chars: str | Iterable[str | int]) -> "CharSet":
        """A set containing exactly the given characters."""
        cps = [c if isinstance(c, int) else ord(c) for c in chars]
        return cls([(cp, cp) for cp in cps])

    @classmethod
    def range(cls, lo: str | int, hi: str | int) -> "CharSet":
        """The inclusive range ``lo..hi``."""
        lo_cp = lo if isinstance(lo, int) else ord(lo)
        hi_cp = hi if isinstance(hi, int) else ord(hi)
        return cls([(lo_cp, hi_cp)])

    @classmethod
    def full(cls, max_codepoint: int = MAX_CODEPOINT) -> "CharSet":
        """Every character up to ``max_codepoint``."""
        return cls([(0, max_codepoint)])

    # -- queries -------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.ranges

    def contains(self, char: str | int) -> bool:
        cp = char if isinstance(char, int) else ord(char)
        lo = 0
        hi = len(self.ranges) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            r_lo, r_hi = self.ranges[mid]
            if cp < r_lo:
                hi = mid - 1
            elif cp > r_hi:
                lo = mid + 1
            else:
                return True
        return False

    def __contains__(self, char: str | int) -> bool:
        return self.contains(char)

    def cardinality(self) -> int:
        """Number of characters in the set."""
        return sum(hi - lo + 1 for lo, hi in self.ranges)

    def min_char(self) -> int:
        """Smallest code point in the set; raises on the empty set."""
        if not self.ranges:
            raise ValueError("min_char of empty CharSet")
        return self.ranges[0][0]

    def sample(self) -> str:
        """An arbitrary (smallest) member, as a 1-character string."""
        return chr(self.min_char())

    def codepoints(self) -> Iterator[int]:
        """Iterate all code points in ascending order."""
        for lo, hi in self.ranges:
            yield from range(lo, hi + 1)

    def chars(self) -> Iterator[str]:
        """Iterate all members as 1-character strings."""
        return (chr(cp) for cp in self.codepoints())

    # -- algebra -------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return CharSet(self.ranges + other.ranges)

    def intersect(self, other: "CharSet") -> "CharSet":
        out: list[tuple[int, int]] = []
        i = 0
        j = 0
        a = self.ranges
        b = other.ranges
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return CharSet(out)

    def complement(self, universe: "CharSet") -> "CharSet":
        """Members of ``universe`` that are not in ``self``."""
        return universe.difference(self)

    def difference(self, other: "CharSet") -> "CharSet":
        out: list[tuple[int, int]] = []
        j = 0
        b = other.ranges
        for lo, hi in self.ranges:
            cur = lo
            while j < len(b) and b[j][1] < cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] <= hi:
                cut_lo, cut_hi = b[k]
                if cur < cut_lo:
                    out.append((cur, cut_lo - 1))
                cur = max(cur, cut_hi + 1)
                if cur > hi:
                    break
                k += 1
            if cur <= hi:
                out.append((cur, hi))
        return CharSet(out)

    def overlaps(self, other: "CharSet") -> bool:
        return not self.intersect(other).is_empty()

    def is_subset(self, other: "CharSet") -> bool:
        return self.difference(other).is_empty()

    def __or__(self, other: "CharSet") -> "CharSet":
        return self.union(other)

    def __and__(self, other: "CharSet") -> "CharSet":
        return self.intersect(other)

    def __sub__(self, other: "CharSet") -> "CharSet":
        return self.difference(other)

    # -- dunder --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and self.ranges == other.ranges

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self.ranges)

    def __iter__(self) -> Iterator[str]:
        return self.chars()

    def __len__(self) -> int:
        return self.cardinality()

    def __repr__(self) -> str:
        return f"CharSet({self.format()!r})"

    def format(self) -> str:
        """Render as a compact character-class body, e.g. ``a-z0-9_``."""
        parts: list[str] = []
        for lo, hi in self.ranges:
            if lo == hi:
                parts.append(_pretty(lo))
            elif hi == lo + 1:
                parts.append(_pretty(lo) + _pretty(hi))
            else:
                parts.append(f"{_pretty(lo)}-{_pretty(hi)}")
        return "".join(parts)


def _pretty(cp: int) -> str:
    ch = chr(cp)
    if ch in "-[]^\\":
        return "\\" + ch
    if 0x20 <= cp < 0x7F:
        return ch
    return f"\\x{cp:02x}" if cp <= 0xFF else f"\\u{cp:04x}"


_EMPTY = CharSet()


def minterms(sets: Sequence[CharSet]) -> list[CharSet]:
    """Partition the union of ``sets`` into disjoint blocks.

    Every input set equals a union of returned blocks, and the blocks
    are pairwise disjoint and non-empty.  This is the standard
    "mintermization" step that lets subset construction treat a
    symbolic alphabet as if it were finite and small.

    The implementation sweeps interval endpoints, which keeps the cost
    at ``O(E log E)`` in the total number of interval endpoints rather
    than exponential in ``len(sets)``.
    """
    boundaries: set[int] = set()
    for cs in sets:
        for lo, hi in cs.ranges:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    cuts = sorted(boundaries)
    blocks: list[CharSet] = []
    for idx in range(len(cuts) - 1):
        lo = cuts[idx]
        hi = cuts[idx + 1] - 1
        piece = CharSet([(lo, hi)])
        if any(piece.overlaps(cs) for cs in sets):
            blocks.append(piece)
    return blocks
