"""Language analysis: witnesses, enumeration, counting, finiteness.

The paper's prototype turns satisfying *languages* into concrete
testcase *inputs* (Sec. 4); these helpers extract such inputs from the
solver's NFAs and also power the test suite's oracles.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Iterator, Optional

from .charset import minterms
from .dfa import determinize
from .nfa import Nfa

__all__ = [
    "shortest_string",
    "enumerate_strings",
    "count_strings",
    "is_finite",
    "language_size",
    "random_string",
]


def shortest_string(nfa: Nfa) -> Optional[str]:
    """A shortest member of the language, or None if it is empty.

    0-1 BFS: ε-edges cost nothing, character edges cost one symbol.
    Among equal-length strings the result is the lexicographically
    least by construction order of the deque (not guaranteed minimal
    lexicographically, but deterministic for a given machine).
    """
    # parent[state] = (previous state, character or None)
    parent: dict[int, tuple[Optional[int], Optional[str]]] = {}
    queue: deque[int] = deque()
    # Sorted so the BFS tie-break — and therefore the witness string —
    # is a function of the machine, not of set iteration order.
    for start in sorted(nfa.starts):
        parent[start] = (None, None)
        queue.appendleft(start)

    goal: Optional[int] = None
    while queue:
        state = queue.popleft()
        if state in nfa.finals:
            goal = state
            break
        for edge in nfa.out_edges(state):
            if edge.dst in parent:
                continue
            if edge.is_epsilon:
                parent[edge.dst] = (state, None)
                queue.appendleft(edge.dst)
            else:
                parent[edge.dst] = (state, edge.label.sample())
                queue.append(edge.dst)
    if goal is None:
        return None
    chars: list[str] = []
    cursor: Optional[int] = goal
    while cursor is not None:
        prev, ch = parent[cursor]
        if ch is not None:
            chars.append(ch)
        cursor = prev
    return "".join(reversed(chars))


def enumerate_strings(
    nfa: Nfa, limit: int = 100, max_length: int = 64, expand_classes: bool = True
) -> Iterator[str]:
    """Yield members of the language in shortlex order, up to ``limit``.

    When ``expand_classes`` is False, one representative character is
    yielded per transition class instead of every member — handy for
    eyeballing big classes like ``Σ``.
    """
    if limit <= 0:
        return
    emitted = 0
    start = nfa.epsilon_closure(nfa.starts)
    frontier: deque[tuple[str, frozenset[int]]] = deque([("", start)])
    while frontier and emitted < limit:
        prefix, states = frontier.popleft()
        if states & nfa.finals:
            yield prefix
            emitted += 1
            if emitted >= limit:
                return
        if len(prefix) >= max_length:
            continue
        labels = nfa.labels_from(states)
        for block in minterms(labels):
            chars = block.chars() if expand_classes else [block.sample()]
            for ch in chars:
                target = nfa.step(states, ch)
                if target:
                    frontier.append((prefix + ch, target))


def count_strings(nfa: Nfa, length: int) -> int:
    """The exact number of strings of the given length in the language."""
    dfa = determinize(nfa)
    counts = {state: 0 for state in dfa.states}
    counts[dfa.start] = 1
    for _ in range(length):
        nxt = {state: 0 for state in dfa.states}
        for state, count in counts.items():
            if count == 0:
                continue
            for label, dst in dfa.transitions[state]:
                nxt[dst] += count * label.cardinality()
        counts = nxt
    return sum(count for state, count in counts.items() if state in dfa.finals)


def is_finite(nfa: Nfa) -> bool:
    """True iff the language is a finite set of strings.

    The language is infinite exactly when a live state lies on a cycle
    that includes at least one character transition (pure ε-cycles do
    not add strings).
    """
    live = nfa.live_states()
    # Tarjan-free check: iterative DFS looking for a character-bearing
    # cycle within the live sub-machine.
    color: dict[int, int] = {}  # 0=in progress, 1=done

    for root in live:
        if root in color:
            continue
        # stack entries: (state, iterator over (dst, has_char)).
        stack = [(root, iter(_live_successors(nfa, root, live)))]
        color[root] = 0
        path_chars: list[bool] = [False]
        on_path = {root: 0}
        while stack:
            state, successors = stack[-1]
            advanced = False
            for dst, has_char in successors:
                if dst in on_path:
                    # Found a cycle; does it carry a character?
                    join = on_path[dst]
                    if has_char or any(path_chars[join + 1 :]):
                        return False
                    continue
                if dst in color:
                    continue
                color[dst] = 0
                on_path[dst] = len(stack)
                stack.append((dst, iter(_live_successors(nfa, dst, live))))
                path_chars.append(has_char)
                advanced = True
                break
            if not advanced:
                color[state] = 1
                del on_path[state]
                stack.pop()
                path_chars.pop()
    return True


def _live_successors(nfa: Nfa, state: int, live: set[int]):
    for edge in nfa.out_edges(state):
        if edge.dst in live:
            yield edge.dst, edge.label is not None


def language_size(nfa: Nfa, cap: int = 1_000_000) -> Optional[int]:
    """Number of strings in the language, or None if infinite.

    ``cap`` bounds the work for pathological finite languages (e.g. Σⁿ
    over the byte alphabet); a result above the cap raises ValueError.
    """
    if not is_finite(nfa):
        return None
    trimmed = nfa.trim()
    if trimmed.is_empty():
        return 0
    # No character-bearing cycle exists, so every member's length is at
    # most the number of live states.  Run the determinized machine's
    # counting DP once, summing final-state mass at every length.
    bound = trimmed.num_states
    dfa = determinize(trimmed)
    counts = {state: 0 for state in dfa.states}
    counts[dfa.start] = 1
    total = 0
    for _ in range(bound + 1):
        total += sum(counts[state] for state in dfa.finals)
        if total > cap:
            raise ValueError(f"finite language larger than cap={cap}")
        nxt = {state: 0 for state in dfa.states}
        for state, count in counts.items():
            if count == 0:
                continue
            for label, dst in dfa.transitions[state]:
                nxt[dst] += count * label.cardinality()
        counts = nxt
    return total


def random_string(
    nfa: Nfa, rng: Optional[random.Random] = None, max_length: int = 64
) -> Optional[str]:
    """A random member of the language, or None if it is empty.

    Performs a random walk over live states, stopping at final states
    with probability proportional to remaining budget.  Used by the
    property-based tests to sample counterexample candidates.

    Without an explicit ``rng`` the walk is seeded with 0 so repeated
    runs — and test reruns — sample the same strings; pass your own
    ``random.Random`` to vary the draw.
    """
    rng = rng or random.Random(0)
    live = nfa.live_states()
    current = [s for s in nfa.epsilon_closure(nfa.starts) if s in live]
    if not current:
        return None
    chars: list[str] = []
    for _ in range(max_length):
        state_set = frozenset(current)
        can_stop = bool(state_set & nfa.finals)
        if can_stop and rng.random() < max(0.15, len(chars) / max_length):
            return "".join(chars)
        # Sorted for determinism: minterms() happens to canonicalize its
        # output today, but a seeded walk should not depend on that.
        labels = [
            edge.label
            for state in sorted(state_set)
            for edge in nfa.out_edges(state)
            if edge.label is not None and edge.dst in live
        ]
        blocks = minterms(labels)
        if not blocks:
            return "".join(chars) if can_stop else None
        block = rng.choice(blocks)
        members = list(block.codepoints())
        ch = chr(rng.choice(members[: min(len(members), 64)]))
        nxt = [s for s in nfa.step(state_set, ch) if s in live]
        if not nxt:
            return "".join(chars) if can_stop else None
        chars.append(ch)
        current = nxt
    return "".join(chars) if frozenset(current) & nfa.finals else None
