"""Deterministic automata: subset construction, Hopcroft minimization.

The decision procedure itself works on ε-NFAs, but three supporting
operations need determinism: complementation (for subset *checking*),
language equivalence, and the NFA-minimization ablation the paper
suggests in Sec. 4.  DFAs here are always *complete* — every state has
an outgoing transition for every character — with labels forming a
partition of the alphabet universe.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from .. import obs
from ..cache import active_cache
from .alphabet import Alphabet
from .backend import active_backend
from .charset import CharSet, minterms
from .nfa import Nfa

__all__ = ["Dfa", "determinize", "complement", "minimize_dfa", "minimize_nfa"]


class Dfa:
    """A complete deterministic automaton over a symbolic alphabet.

    ``transitions[q]`` is a list of ``(label, dst)`` pairs whose labels
    partition ``alphabet.universe``.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        transitions: dict[int, list[tuple[CharSet, int]]],
        start: int,
        finals: set[int],
    ):
        self.alphabet = alphabet
        self.transitions = transitions
        self.start = start
        self.finals = finals

    @property
    def num_states(self) -> int:
        return len(self.transitions)

    @property
    def states(self) -> Iterable[int]:
        return self.transitions.keys()

    def delta(self, state: int, char: str | int) -> int:
        """The unique successor of ``state`` on ``char``.

        ``char`` must be drawn from the alphabet universe; a complete
        DFA partitions exactly that universe, so a character outside it
        has no successor *by construction*, not because the machine is
        broken.  The two failure modes get distinct errors.
        """
        cp = char if isinstance(char, int) else ord(char)
        for label, dst in self.transitions[state]:
            if cp in label:
                return dst
        if cp not in self.alphabet.universe:
            raise ValueError(
                f"character {cp!r} is outside the "
                f"{self.alphabet.name} alphabet universe"
            )
        raise ValueError(f"incomplete DFA: no move from {state} on {cp!r}")

    def accepts(self, text: str) -> bool:
        """Membership in ``L(self)``.

        Strings using characters outside the alphabet universe are
        simply not in the language (``L ⊆ Σ*``), so they answer False
        rather than raising.
        """
        if not self.alphabet.contains_string(text):
            return False
        state = self.start
        for ch in text:
            state = self.delta(state, ch)
        return state in self.finals

    def complemented(self) -> "Dfa":
        """Same machine with final and non-final states swapped.

        The per-state move lists are copied, not shared: the complement
        must stay independent of later in-place edits to either machine.
        """
        finals = set(self.transitions) - self.finals
        transitions = {
            state: list(moves) for state, moves in self.transitions.items()
        }
        return Dfa(self.alphabet, transitions, self.start, finals)

    def is_empty(self) -> bool:
        seen = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            if state in self.finals:
                return False
            for _, dst in self.transitions[state]:
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return True

    def to_nfa(self) -> Nfa:
        """View this DFA as an NFA (states are renumbered densely)."""
        nfa = Nfa(self.alphabet)
        mapping = {state: nfa.add_state() for state in sorted(self.transitions)}
        for src, moves in self.transitions.items():
            for label, dst in moves:
                nfa.add_transition(mapping[src], label, mapping[dst])
        nfa.starts = {mapping[self.start]}
        nfa.finals = {mapping[s] for s in self.finals}
        return nfa

    def __repr__(self) -> str:
        return f"<Dfa states={self.num_states} finals={len(self.finals)}>"


def determinize(nfa: Nfa) -> Dfa:
    """Subset construction producing a complete DFA.

    Symbolic labels are handled by mintermizing the labels leaving each
    subset state, so the construction never enumerates individual
    characters.  Memoized per machine by the active language cache.
    """
    cache = active_cache()
    if cache is not None:
        return cache.determinize(nfa)
    return _determinize_instrumented(nfa)


def _determinize_instrumented(nfa: Nfa) -> Dfa:
    obs.count_operation("determinize")
    backend = active_backend()
    with obs.span(
        "determinize", states_in=nfa.num_states, backend=backend.name
    ) as sp:
        dfa = backend.determinize(nfa)
        sp.set("states_out", dfa.num_states)
        return dfa


def _determinize(nfa: Nfa) -> Dfa:
    alphabet = nfa.alphabet
    universe = alphabet.universe

    start_set = nfa.epsilon_closure(nfa.starts)
    ids: dict[frozenset[int], int] = {start_set: 0}
    order: list[frozenset[int]] = [start_set]
    transitions: dict[int, list[tuple[CharSet, int]]] = {}
    finals: set[int] = set()
    sink: Optional[int] = None

    def intern(subset: frozenset[int]) -> int:
        if subset not in ids:
            ids[subset] = len(order)
            order.append(subset)
        return ids[subset]

    index = 0
    while index < len(order):
        subset = order[index]
        state_id = ids[subset]
        index += 1
        obs.visit_states(len(subset))
        if subset & nfa.finals:
            finals.add(state_id)
        labels = nfa.labels_from(subset)
        moves: list[tuple[CharSet, int]] = []
        covered = CharSet.empty()
        by_target: dict[int, CharSet] = {}
        for block in minterms(labels):
            rep = block.min_char()
            target = frozenset(nfa.step(subset, rep))
            target_id = intern(target)
            by_target[target_id] = by_target.get(target_id, CharSet.empty()) | block
            covered = covered | block
        rest = universe - covered
        if not rest.is_empty():
            if sink is None:
                sink_set = frozenset()
                sink = intern(sink_set)
            by_target[sink] = by_target.get(sink, CharSet.empty()) | rest
        moves = sorted(by_target.items(), key=lambda kv: kv[0])
        transitions[state_id] = [(label, dst) for dst, label in moves]

    # The sink (if created) may not have been expanded yet; complete it.
    for state_id in range(len(order)):
        if state_id not in transitions:
            transitions[state_id] = [(universe, state_id)]
    return Dfa(alphabet, transitions, 0, finals)


def complement(nfa: Nfa) -> Nfa:
    """The NFA for ``Σ* \\ L(nfa)``; signature-memoized when cached."""
    cache = active_cache()
    if cache is not None:
        return cache.complement(nfa)
    return _complement_instrumented(nfa)


def _complement_instrumented(nfa: Nfa) -> Nfa:
    obs.count_operation("complement")
    with obs.span("complement", states_in=nfa.num_states) as sp:
        result = determinize(nfa).complemented().to_nfa()
        sp.set("states_out", result.num_states)
        return result


def minimize_dfa(dfa: Dfa) -> Dfa:
    """Hopcroft's partition-refinement minimization.

    Symbolic labels are first globally mintermized; each block then acts
    as one input symbol for the classic algorithm.  Unreachable states
    are dropped before refinement.
    """
    obs.count_operation("minimize")
    backend = active_backend()
    with obs.span(
        "hopcroft", states_in=dfa.num_states, backend=backend.name
    ) as sp:
        out = backend.minimize_dfa(dfa)
        sp.set("states_out", out.num_states)
        return out


def _minimize_dfa(dfa: Dfa) -> Dfa:
    # Restrict to reachable states.
    reachable = {dfa.start}
    queue = deque([dfa.start])
    while queue:
        state = queue.popleft()
        for _, dst in dfa.transitions[state]:
            if dst not in reachable:
                reachable.add(dst)
                queue.append(dst)

    # Sorted so partition refinement sees a state order that is a
    # function of the machine, not of set iteration order.
    all_labels = [
        label
        for state in sorted(reachable)
        for label, _ in dfa.transitions[state]
    ]
    symbols = minterms(all_labels)
    reps = [block.min_char() for block in symbols]

    # delta[s][k] = successor of s on symbol block k.
    delta: dict[int, list[int]] = {}
    for state in sorted(reachable):
        row = []
        for rep in reps:
            row.append(dfa.delta(state, rep))
        delta[state] = row
        obs.visit_states(1)

    # preds[k][t] = states stepping to t on block k.
    preds: list[dict[int, set[int]]] = [dict() for _ in symbols]
    for state in reachable:
        for k, target in enumerate(delta[state]):
            preds[k].setdefault(target, set()).add(state)

    finals = dfa.finals & reachable
    nonfinals = reachable - finals
    partition: list[set[int]] = [blk for blk in (finals, nonfinals) if blk]
    member: dict[int, int] = {}
    for idx, blk in enumerate(partition):
        for state in blk:
            member[state] = idx
    worklist: deque[int] = deque(range(len(partition)))

    while worklist:
        splitter_idx = worklist.popleft()
        splitter = set(partition[splitter_idx])
        for k in range(len(symbols)):
            incoming: set[int] = set()
            for target in splitter:
                incoming |= preds[k].get(target, set())
            touched: dict[int, set[int]] = {}
            for state in incoming:
                touched.setdefault(member[state], set()).add(state)
            for blk_idx, moved in touched.items():
                block = partition[blk_idx]
                if len(moved) == len(block):
                    continue
                remainder = block - moved
                partition[blk_idx] = moved
                new_idx = len(partition)
                partition.append(remainder)
                for state in remainder:
                    member[state] = new_idx
                # Re-examine both halves.  Classic Hopcroft can get away
                # with only the smaller one by tracking worklist
                # membership; re-adding both is simpler and still
                # terminates (every split strictly grows the partition).
                worklist.append(blk_idx)
                worklist.append(new_idx)

    # Build the quotient machine.
    transitions: dict[int, list[tuple[CharSet, int]]] = {}
    for blk_idx, block in enumerate(partition):
        rep_state = next(iter(block))
        by_target: dict[int, CharSet] = {}
        for k, symbol in enumerate(symbols):
            target_blk = member[delta[rep_state][k]]
            by_target[target_blk] = by_target.get(target_blk, CharSet.empty()) | symbol
        covered = CharSet.empty()
        for cs in by_target.values():
            covered = covered | cs
        rest = dfa.alphabet.universe - covered
        if not rest.is_empty():
            # Characters not appearing in any label all behave like the
            # original machine's sink moves; route them with the block
            # containing the representative's behaviour on such chars.
            target_blk = member[dfa.delta(rep_state, rest.min_char())]
            by_target[target_blk] = by_target.get(target_blk, CharSet.empty()) | rest
        transitions[blk_idx] = [(cs, dst) for dst, cs in sorted(by_target.items())]
    new_finals = {member[s] for s in finals}
    return Dfa(dfa.alphabet, transitions, member[dfa.start], new_finals)


def minimize_nfa(nfa: Nfa) -> Nfa:
    """Canonical minimal *deterministic* machine for ``L(nfa)``, as an NFA.

    This is the intermediate-machine minimization the paper suggests
    (Sec. 4) as a remedy for the ``secure`` outlier; the ablation
    benchmark toggles it.  With a language cache active the minimal
    machine falls out of the signature computation and is memoized by
    signature, so equivalent machines minimize once.
    """
    cache = active_cache()
    if cache is not None:
        return cache.minimize(nfa)
    return _minimize_nfa_instrumented(nfa)


def _minimize_nfa_instrumented(nfa: Nfa) -> Nfa:
    with obs.span("minimize", states_in=nfa.num_states) as sp:
        out = minimize_dfa(determinize(nfa)).to_nfa().trim()
        sp.set("states_out", out.num_states)
        return out
