"""Deciding language inclusion and equivalence.

Inclusion ``L(a) ⊆ L(b)`` is the oracle both for the solution checker
(:mod:`repro.solver.verify`) and for the test suite.  Rather than
building the full complement of ``b`` we determinize ``b`` *lazily*
along the reachable part of the product with ``a`` — the standard
on-the-fly inclusion check, which returns a concrete counterexample
string when inclusion fails.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .. import obs
from ..cache import active_cache
from .backend import active_backend
from .charset import minterms
from .nfa import Nfa

__all__ = ["counterexample", "is_subset", "equivalent"]


def counterexample(a: Nfa, b: Nfa) -> Optional[str]:
    """A string in ``L(a) \\ L(b)``, or None when ``L(a) ⊆ L(b)``.

    Explores pairs ``(Sa, Sb)`` of ε-closed NFA state *sets* in BFS
    order, so the returned counterexample is one of minimal length.
    """
    obs.count_operation("inclusion_check")
    if a.alphabet != b.alphabet:
        raise ValueError("cannot compare machines over different alphabets")
    with obs.span(
        "inclusion_check", states_a=a.num_states, states_b=b.num_states
    ) as sp:
        result = _counterexample(a, b)
        sp.set("included", result is None)
        return result


def _counterexample(a: Nfa, b: Nfa) -> Optional[str]:
    start = (a.epsilon_closure(a.starts), b.epsilon_closure(b.starts))
    seen: set[tuple[frozenset[int], frozenset[int]]] = {start}
    queue: deque[tuple[frozenset[int], frozenset[int], str]] = deque(
        [(start[0], start[1], "")]
    )
    while queue:
        sa, sb, prefix = queue.popleft()
        obs.visit_states(1)
        if (sa & a.finals) and not (sb & b.finals):
            return prefix
        # Minterm over *both* machines' outgoing labels so each block is
        # behaviourally uniform for a and for b; blocks from a's labels
        # alone could straddle a distinction that only b makes.
        labels = a.labels_from(sa) + b.labels_from(sb)
        for block in minterms(labels):
            ch = block.sample()
            ta = a.step(sa, ch)
            if not ta:
                continue
            tb = b.step(sb, ch)
            key = (ta, tb)
            if key not in seen:
                seen.add(key)
                queue.append((ta, tb, prefix + ch))
    return None


def is_subset(a: Nfa, b: Nfa) -> bool:
    """Decide ``L(a) ⊆ L(b)``.

    Memoized by the active language cache: when both operands'
    signatures are already known, equal signatures short-circuit to
    True and other verdicts are remembered per signature pair — which
    collapses the solver's repeated subsumption scans.  Otherwise the
    lazy on-the-fly check below runs (signatures are never forced, so
    determinization blowup is no worse than uncached) and the verdict
    is memoized structurally.
    """
    cache = active_cache()
    if cache is not None:
        return cache.is_subset(a, b)
    return active_backend().is_subset(a, b)


def equivalent(a: Nfa, b: Nfa) -> bool:
    """Decide ``L(a) = L(b)``.

    With a language cache active and both signatures already known this
    is a signature comparison: the canonical-form digests agree exactly
    when the languages do.  Otherwise the cache falls back to the lazy
    bidirectional inclusion check and memoizes the verdict.
    """
    cache = active_cache()
    if cache is not None:
        return cache.equivalent(a, b)
    return is_subset(a, b) and is_subset(b, a)
