"""The automata backend protocol: pluggable kernels for the hot paths.

Per the observability spans, ``determinize``, ``product``, and Hopcroft
minimization dominate solver wall time.  This module factors those
kernels behind a small protocol so they can be swapped without touching
any call site:

* :class:`ReferenceBackend` — the original dict-of-dicts kernels in
  :mod:`repro.automata.dfa` and :mod:`repro.automata.ops`.  Simple,
  readable, and the semantic baseline every other backend is
  property-tested against.
* :class:`~repro.automata.bitset.BitsetBackend` (name ``"bitset"``) —
  vectorized kernels over Python ``int`` bitmasks: NFA state sets are
  single integers, transition relations are per-minterm bitset rows,
  subset construction and inclusion run by bitwise frontier
  propagation, and Hopcroft refines integer partition arrays.

Selection is scoped like the language cache (:mod:`repro.cache`): a
context variable consulted by the instrumented entry points in
``dfa``/``ops``/``equivalence``, installed for a dynamic extent with
:func:`use_backend`.  When no backend is installed, the
``DPRLE_BACKEND`` environment variable names the default; unset means
``"reference"``.  `RegLangSolver(backend=...)`, ``GciLimits.backend``,
and the CLI ``--backend`` flag all funnel into this module.

Backends must be *stateless* (all per-call state lives in compiled
views of the operand machines): instances are shared across solves and
across the multiprocess worker pool, which re-installs the parent's
backend by name in every worker task.

Semantics contract (property-tested in ``tests/backend/``):

* ``determinize``/``minimize_dfa``/``complement`` must be
  language-faithful; the minimal DFA is canonical, so language
  signatures (:mod:`repro.cache`) are identical across backends and
  cached results stay backend-portable.
* ``product`` must be *structure*-faithful: the same states in the
  same intern order, the same edges with the same bridge tags and
  provenance, because the GCI procedure reads bridge-crossing
  structure off its output.
* ``is_empty``/``is_subset`` are plain boolean oracles.
* ``left_quotient`` must be language-faithful; its output is only
  ever consumed as a language (Galois maximization, signatures), so a
  backend may merge transitions that share a destination.

See ``docs/BACKENDS.md`` for the full contract and for how to add a
native (Rust/C) backend behind the same protocol.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Protocol, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .dfa import Dfa
    from .nfa import Nfa

__all__ = [
    "AutomataBackend",
    "ReferenceBackend",
    "available_backends",
    "register_backend",
    "get_backend",
    "active_backend",
    "use_backend",
    "BACKEND_ENV",
]

#: Environment variable naming the process-wide default backend.
BACKEND_ENV = "DPRLE_BACKEND"


class AutomataBackend(Protocol):
    """The kernel set a backend must provide.

    All operations receive and return the shared
    :class:`~repro.automata.nfa.Nfa` / :class:`~repro.automata.dfa.Dfa`
    types over the shared :class:`~repro.automata.alphabet.Alphabet`
    and :class:`~repro.automata.charset.CharSet`; a backend is free to
    compile them into any internal representation it likes, but the
    boundary types never change.
    """

    name: str

    def determinize(self, nfa: "Nfa") -> "Dfa":
        """Subset construction producing a complete DFA."""
        ...

    def minimize_dfa(self, dfa: "Dfa") -> "Dfa":
        """Hopcroft minimization of a complete DFA."""
        ...

    def product(
        self, a: "Nfa", b: "Nfa"
    ) -> tuple["Nfa", dict[int, tuple[int, int]]]:
        """Cross-product intersection with provenance (structure-faithful)."""
        ...

    def complement(self, nfa: "Nfa") -> "Nfa":
        """The NFA for ``Σ* \\ L(nfa)``."""
        ...

    def is_empty(self, nfa: "Nfa") -> bool:
        """True iff ``L(nfa)`` is empty."""
        ...

    def is_subset(self, a: "Nfa", b: "Nfa") -> bool:
        """Decide ``L(a) ⊆ L(b)``."""
        ...

    def left_quotient(self, prefixes: "Nfa", language: "Nfa") -> "Nfa":
        """The universal left quotient (language-faithful).

        Backends may merge same-destination transitions, so two
        backends' outputs are language-equal but not necessarily
        structurally identical; callers must treat the result as a
        language, never read structure off it.
        """
        ...


class ReferenceBackend:
    """The original pure-Python dict-of-dicts kernels.

    Every method delegates to the historical implementation; this class
    only gives them a protocol-shaped home.  It is the semantic
    baseline: other backends are property-tested against it.
    """

    name = "reference"

    def determinize(self, nfa: "Nfa") -> "Dfa":
        from .dfa import _determinize

        return _determinize(nfa)

    def minimize_dfa(self, dfa: "Dfa") -> "Dfa":
        from .dfa import _minimize_dfa

        return _minimize_dfa(dfa)

    def product(
        self, a: "Nfa", b: "Nfa"
    ) -> tuple["Nfa", dict[int, tuple[int, int]]]:
        from .ops import _product_reference

        return _product_reference(a, b)

    def complement(self, nfa: "Nfa") -> "Nfa":
        return self.determinize(nfa).complemented().to_nfa()

    def is_empty(self, nfa: "Nfa") -> bool:
        return nfa.is_empty()

    def is_subset(self, a: "Nfa", b: "Nfa") -> bool:
        from .equivalence import counterexample

        return counterexample(a, b) is None

    def left_quotient(self, prefixes: "Nfa", language: "Nfa") -> "Nfa":
        from .ops import _left_quotient

        return _left_quotient(prefixes, language)


# -- the registry ------------------------------------------------------------

_factories: dict[str, Callable[[], AutomataBackend]] = {}
_instances: dict[str, AutomataBackend] = {}


def register_backend(name: str, factory: Callable[[], AutomataBackend]) -> None:
    """Register a backend under ``name`` (how a native drop-in plugs in)."""
    if name in _factories:
        raise ValueError(f"automata backend {name!r} is already registered")
    _factories[name] = factory


def available_backends() -> list[str]:
    """The registered backend names, sorted."""
    return sorted(_factories)


def get_backend(name: str) -> AutomataBackend:
    """The (shared, stateless) backend instance registered under ``name``."""
    instance = _instances.get(name)
    if instance is not None:
        return instance
    factory = _factories.get(name)
    if factory is None:
        raise ValueError(
            f"unknown automata backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    instance = factory()
    _instances[name] = instance
    return instance


def _make_bitset() -> AutomataBackend:
    from .bitset import BitsetBackend

    return BitsetBackend()


register_backend("reference", ReferenceBackend)
register_backend("bitset", _make_bitset)


# -- the contextvar scope ----------------------------------------------------

_active: ContextVar[Optional[AutomataBackend]] = ContextVar(
    "dprle_automata_backend", default=None
)


def active_backend() -> AutomataBackend:
    """The backend for the current dynamic extent.

    Resolution order: explicitly installed backend (:func:`use_backend`)
    → the ``DPRLE_BACKEND`` environment variable → ``"reference"``.
    A bad environment value raises, loudly — silently falling back
    would let a typo masquerade as a measurement of the named backend.
    """
    current = _active.get()
    if current is not None:
        return current
    env = os.environ.get(BACKEND_ENV, "").strip()
    if env:
        return get_backend(env)
    return get_backend("reference")


@contextmanager
def use_backend(
    backend: Union[str, AutomataBackend, None],
) -> Iterator[AutomataBackend]:
    """Install ``backend`` (a name or an instance) for the block.

    ``None`` is a no-op that yields the currently active backend, so
    callers can wrap unconditionally (`with use_backend(limits.backend)`).
    """
    if backend is None:
        yield active_backend()
        return
    if isinstance(backend, str):
        backend = get_backend(backend)
    token = _active.set(backend)
    try:
        yield backend
    finally:
        _active.reset(token)
