"""Generalized Concatenation-Intersection over CI-groups (paper Fig. 8).

A *CI-group* is a connected component of the dependency graph's
concatenation edges (Sec. 3.4.3).  Solving one group generalizes the
basic CI algorithm along three axes:

* **Nesting** — ``(v1 · v2) · v3 ⊆ c4`` builds a tower of machines; a
  subset constraint on the top affects every operand below it.  We keep
  the paper's *shared solution representation* by making every
  operand's solution a literal sub-machine (a start/final boundary
  pair) of its top-level machine, so later intersections on the top
  machine automatically update the operands.
* **Operation ordering** — inbound subset constraints are applied to a
  node *before* its machine participates in a concatenation (the
  paper's first invariant, which the ``nid_5`` example motivates).
* **Sharing** — a variable that occurs as an operand of several
  concatenations receives one slice per occurrence; a candidate
  combination of bridge choices is a solution only if the slices'
  intersection is non-empty (the paper's "matching machines" check).

Three hygiene measures keep the output consistent with the paper's
*Maximal* property (Def. 3.1):

* Constant machines are ε-eliminated before any product.  ε-closure
  aliases of a crossing state would otherwise each produce a bridge
  image with a possibly *smaller* sliced language — satisfying but not
  maximal.  The paper's figures draw constants ε-free for this reason.
* Each candidate is *closed* under a Galois maximization: every
  variable is re-assigned the largest language that keeps all the
  group's constraints satisfied given the other variables' current
  values, computed with universal left/right quotients, until a fixed
  point.  This is what turns the per-ε-transition slices of the
  Sec. 3.1.1 example (``(xyy, z)``, ``(xyy, yyz)``, ``(xyyyy, z)``)
  into the paper's maximal answers ``A1 = (xyy, z|yyz)`` and
  ``A2 = (x(yy|yyyy), z)``.
* Surviving solutions that are pointwise subsumed by another solution
  (every variable's language a subset of the other's) are pruned —
  *online*, against a maximal frontier of incumbents, so the
  enumeration can stop early once ``max_solutions`` provably-maximal
  solutions exist (see :func:`_consume`).

The combination enumeration (stage 5) is organised as a
producer/consumer pair so the producer can be swapped out: serial
in-process (:func:`_serial_candidates`) or fanned out across worker
processes (:mod:`repro.parallel`) when ``GciLimits.workers`` asks for
it.  Candidate order is canonical (mixed-radix combination index, last
tag fastest — exactly ``itertools.product`` order), so results are
identical no matter how the space is chunked.

The output is a list of disjunctive solutions, each mapping the group's
variable nodes to NFAs — one solution per surviving combination of
bridge-ε choices, exactly one choice per concatenation in the group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .. import obs
from ..automata import ops
from ..automata.dfa import minimize_nfa
from ..automata.equivalence import equivalent, is_subset
from ..automata.nfa import BridgeTag, Nfa
from ..cache import CacheLimits, active_cache
from ..constraints.depgraph import DepGraph, Node

__all__ = ["GciLimits", "solve_group", "group_solutions"]


@dataclass
class GciLimits:
    """Knobs bounding the (worst-case exponential) enumeration.

    ``prune_subsumed`` implements the Maximal property across a group's
    disjunctive solutions.  The subsumption check is *streaming*: each
    candidate is compared against a frontier of incumbent maxima as it
    arrives, and with ``maximize=False`` the enumeration stops as soon
    as ``max_solutions`` provably-unsubsumable solutions exist — so the
    cap bounds work, not just output.  (With ``maximize=True`` a later
    combination can still grow past an earlier one, so the full space
    is consumed before the cap applies; ``prune_subsumed=False`` or
    ``max_solutions=1`` always stream.)

    ``workers`` fans the bridge-combination space out across a process
    pool (:mod:`repro.parallel`): ``0`` forces serial, ``None`` defers
    to the ``DPRLE_WORKERS`` environment variable (default serial).
    Groups whose combination space is smaller than
    ``min_parallel_combinations`` are solved in-process even when
    workers are available — the task encode/decode would cost more than
    the enumeration.

    ``cache`` requests a solver-scoped language cache
    (:class:`repro.cache.LangCache`) for the solve: the worklist solver
    activates one with these limits when no cache is already active.
    ``None`` leaves caching to the caller (:class:`RegLangSolver`
    installs its own).

    ``precheck`` runs the :mod:`repro.check` abstract domains over the
    graph before solving and prunes what they prove empty — basic
    variables short-circuit to ∅ without any products, and a group
    proved unsatisfiable skips the enumeration entirely.  The pruning
    is solution-preserving (see ``docs/DIAGNOSTICS.md``); counters
    ``check.pruned_nodes`` / ``check.proved_unsat`` record its effect.

    ``backend`` names the automata kernel set
    (:mod:`repro.automata.backend`) the solve runs under: ``None``
    defers to whatever is already active (an enclosing
    :func:`~repro.automata.backend.use_backend` block, else the
    ``DPRLE_BACKEND`` environment variable, else ``"reference"``).
    Worker processes re-install the same backend by name, so parallel
    solves stay backend-consistent end to end.

    ``plan`` selects the enumeration planner (:mod:`repro.solver.plan`):
    ``"off"`` (default) walks the factored space as-is; ``"equiv"``
    collapses signature-interchangeable bridge edges before stage 5;
    ``"beam"`` builds the viability bitmask and schedules parallel
    chunks best-first by exact predicted yield; ``"full"`` does both.
    Every mode preserves the output stream exactly (same solutions,
    same order) — the planner only removes work that is provably
    redundant.  ``beam_width`` caps the number of chunks in flight for
    a planned parallel solve with a ``max_solutions`` cap (``0`` sizes
    the window from the predicted yield).
    """

    max_solutions: Optional[int] = None
    max_combinations: int = 100_000
    dedupe: bool = True
    prune_subsumed: bool = True
    maximize: bool = True
    max_maximize_rounds: int = 3
    minimize_leaves: bool = False
    cache: Optional[CacheLimits] = None
    workers: Optional[int] = None
    min_parallel_combinations: int = 64
    precheck: bool = False
    backend: Optional[str] = None
    plan: str = "off"
    beam_width: int = 0


@dataclass
class _Occurrence:
    """One leaf occurrence inside a top machine's expression tree.

    Boundary selectors are resolved against a chosen bridge-edge
    combination: ``("machine",)`` means the top machine's own
    starts/finals; ``("edge-src", tag)`` / ``("edge-dst", tag)`` mean
    the source/target state of the chosen ε-image for ``tag``.
    """

    node: Node
    top: Node
    start_of: tuple
    final_of: tuple


def solve_group(
    graph: DepGraph,
    group: set[Node],
    limits: Optional[GciLimits] = None,
) -> list[dict[Node, Nfa]]:
    """Solve one CI-group; returns its disjunctive solutions eagerly."""
    return list(group_solutions(graph, group, limits))


def group_solutions(
    graph: DepGraph,
    group: set[Node],
    limits: Optional[GciLimits] = None,
) -> Iterator[dict[Node, Nfa]]:
    """Enumerate a CI-group's disjunctive solutions.

    Yields ``{var node: machine}`` dictionaries; an exhausted iterator
    with no yields means the group admits no (non-empty) solutions.
    Enumeration is lazy unless ``prune_subsumed`` demands a wider view;
    even then the streaming frontier lets ``max_solutions=N`` cut the
    enumeration short once the first ``N`` survivors are provably
    final (see :class:`GciLimits`).
    """
    limits = limits or GciLimits()
    with obs.span("ci", group_size=len(group)) as sp:
        prepared = _prepare_group(graph, group, limits)
        if prepared is None:
            # Some concatenation is unrealizable: no solutions.
            sp.set("combinations", 0)
            return
        sp.set("combinations", prepared.total_combinations)
    _emit_group_counters(prepared)
    yield from _consume(prepared, limits, _candidate_stream(prepared, limits))


def _emit_group_counters(prepared: "_PreparedGroup") -> None:
    """The per-group combination accounting, shared with the parallel
    driver.  The identity the telemetry tests rely on::

        total = factored + pruned_equiv + pruned_plan
                + enumerated + skipped
    """
    obs.increment_metric(
        "gci.combinations_total", prepared.total_combinations
    )
    factored_out = prepared.total_combinations - prepared.factored_combinations
    if factored_out:
        obs.increment_metric("gci.combinations_factored", factored_out)
    if prepared.plan is not None:
        if prepared.plan.pruned_equiv:
            obs.increment_metric(
                "gci.combinations_pruned_equiv", prepared.plan.pruned_equiv
            )
        if prepared.plan.pruned_plan:
            obs.increment_metric(
                "gci.combinations_pruned_plan", prepared.plan.pruned_plan
            )


def _candidate_stream(
    prepared: "_PreparedGroup", limits: GciLimits
) -> Iterator[tuple[int, Any, dict[Node, Nfa]]]:
    """The stage-5 producer: serial in-process, or a process-pool
    fan-out when workers are configured and the space is big enough."""
    from ..parallel import parallel_candidates, resolve_workers

    workers = resolve_workers(limits.workers)
    if (
        workers > 0
        and prepared.enumeration_space >= limits.min_parallel_combinations
    ):
        return parallel_candidates(prepared, limits, workers)
    return _serial_candidates(prepared, limits)


@dataclass
class _PreparedGroup:
    """Stages 1-4 of the GCI procedure: everything the combination
    enumeration (stage 5) needs, built once per group.

    ``total_combinations`` is the full bridge-choice product;
    ``factored_combinations`` is what is left after the combination-
    space factoring dropped edges that can appear in no viable
    combination (so only the factored space is ever walked).
    ``slice_memo`` memoizes per-occurrence slices across combinations —
    an occurrence's slice depends on at most two tags, so the memo
    collapses the per-combination ``copy``/``trim`` work to one
    computation per (occurrence, boundary-edge) pair.  ``pair_memo``
    memoizes the pairwise share intersections (trimmed, ``None`` when
    empty) keyed by the two occurrences' boundary keys; factoring fills
    it and :func:`_slice_combination` reads it back.

    ``plan`` is the enumeration planner's verdict
    (:class:`repro.solver.plan.EnumerationPlan`, ``None`` when
    ``GciLimits.plan`` is ``"off"``).  Planning may collapse
    ``edges_by_tag`` further (one representative per signature class),
    so the canonical index space actually walked is
    :attr:`index_space`, and :attr:`enumeration_space` is the survivor
    count the enumerated/skipped accounting is measured against.
    """

    machines: dict[Node, Nfa]
    occurrences: list[_Occurrence]
    tag_order: list[BridgeTag]
    edges_by_tag: dict[BridgeTag, list[tuple[int, int]]]
    constraint_specs: list[tuple[Nfa, list[Node]]]
    var_nodes: list[Node]
    leaves: set[Node]
    total_combinations: int
    factored_combinations: int
    slice_memo: dict[tuple, Optional[Nfa]] = field(default_factory=dict)
    pair_memo: dict[tuple, Optional[Nfa]] = field(default_factory=dict)
    plan: Optional[Any] = None

    @property
    def index_space(self) -> int:
        """The canonical index space over the current edge lists."""
        space = 1
        for tag in self.tag_order:
            space *= len(self.edges_by_tag[tag])
        return space

    @property
    def enumeration_space(self) -> int:
        """How many combinations stage 5 can walk at most (survivors
        of the plan's viability mask; the whole index space without
        one)."""
        if self.plan is not None:
            return self.plan.survivors
        return self.factored_combinations

    def survivors_in(self, start: int, stop: int) -> int:
        """Walkable combinations with canonical index in [start, stop)."""
        if self.plan is not None:
            return self.plan.count_survivors(start, stop)
        return max(0, stop - start)


def _serial_candidates(
    prepared: "_PreparedGroup", limits: GciLimits
) -> Iterator[tuple[int, Any, dict[Node, Nfa]]]:
    """Walk the whole (factored) combination space in-process.

    Yields ``(combination index, dedupe key or None, solution)``; the
    key slot is filled by the parallel producer (workers compute
    signatures on their side) and left ``None`` here.  Accounts walked
    combinations into ``gci.combinations_enumerated`` /
    ``gci.combinations_skipped`` when the consumer stops early.
    """
    progress = [0]
    try:
        for index, solution in _iter_candidates(
            prepared, limits, 0, None, progress
        ):
            yield index, None, solution
    finally:
        obs.increment_metric("gci.combinations_enumerated", progress[0])
        skipped = prepared.enumeration_space - progress[0]
        if skipped > 0:
            obs.increment_metric("gci.combinations_skipped", skipped)


def _iter_candidates(
    prepared: "_PreparedGroup",
    limits: GciLimits,
    start: int,
    stop: Optional[int],
    progress: Optional[list[int]] = None,
) -> Iterator[tuple[int, dict[Node, Nfa]]]:
    """Yield ``(index, solution)`` for the viable combinations with
    canonical index in ``[start, stop)``.

    The canonical index enumerates ``itertools.product`` order over the
    factored edge lists (last tag in ``tag_order`` fastest); workers
    and the serial path share this function, so a combination's index —
    and therefore the output order — is identical regardless of how the
    space is chunked.  ``progress``, when given, is a one-element list
    incremented per combination walked (work accounting survives an
    early ``close()``).
    """
    edge_lists = [prepared.edges_by_tag[tag] for tag in prepared.tag_order]
    radices = [len(edges) for edges in edge_lists]
    total = 1
    for radix in radices:
        total *= radix
    stop = total if stop is None else min(stop, total)
    if start >= stop:
        return
    plan = prepared.plan
    if plan is not None and plan.mask is not None:
        # Planned walk: only the viability-mask survivors, by index.
        indices: Any = plan.iter_survivors(start, stop)
        digits = None
    else:
        indices = range(start, stop)
        digits = _digits_at(start, radices)
    for index in indices:
        if digits is None:
            current = _digits_at(index, radices)
        else:
            current = digits
        if progress is not None:
            # Serial path: heartbeat against the group's walkable space
            # (the parallel path reports per-chunk from _drain instead).
            progress[0] += 1
            obs.progress(
                "gci_enumeration", progress[0], prepared.enumeration_space
            )
        with obs.span("gci_combination") as sp:
            chosen = {
                tag: edge_lists[pos][current[pos]]
                for pos, tag in enumerate(prepared.tag_order)
            }
            solution = _slice_combination(prepared, chosen)
            if solution is not None and limits.maximize:
                with obs.span("gci_maximize"):
                    solution = _maximize_solution(
                        solution,
                        prepared.machines,
                        prepared.constraint_specs,
                        prepared.var_nodes,
                        limits,
                    )
            sp.set("viable", solution is not None)
        if solution is not None:
            yield index, solution
        if digits is not None:
            for pos in range(len(digits) - 1, -1, -1):
                digits[pos] += 1
                if digits[pos] < radices[pos]:
                    break
                digits[pos] = 0


def _digits_at(index: int, radices: list[int]) -> list[int]:
    """Mixed-radix decomposition of a canonical combination index."""
    digits = [0] * len(radices)
    for pos in range(len(radices) - 1, -1, -1):
        index, digits[pos] = divmod(index, radices[pos])
    return digits


def _combo_at(
    prepared: "_PreparedGroup", index: int
) -> dict[BridgeTag, tuple[int, int]]:
    """The chosen-edge mapping for a canonical combination index."""
    edge_lists = [prepared.edges_by_tag[tag] for tag in prepared.tag_order]
    digits = _digits_at(index, [len(edges) for edges in edge_lists])
    return {
        tag: edge_lists[pos][digits[pos]]
        for pos, tag in enumerate(prepared.tag_order)
    }


def _deduped(
    prepared: "_PreparedGroup",
    limits: GciLimits,
    candidates: Iterator[tuple[int, Any, dict[Node, Nfa]]],
) -> Iterator[tuple[int, Any, dict[Node, Nfa]]]:
    """Drop language-duplicate candidates (stage-5 dedupe).

    With a language cache (or worker-computed keys) this is a
    signature-set membership test; without either it falls back to the
    pairwise equivalence scan against previously accepted solutions.
    """
    cache = active_cache()
    seen: set = set()
    accepted: list[dict[Node, Nfa]] = []
    for index, key, solution in candidates:
        if key is None and cache is not None:
            key = tuple(
                cache.signature(solution[node]) for node in prepared.var_nodes
            )
        if key is not None:
            if key in seen:
                continue
            seen.add(key)
        elif any(_pointwise_equivalent(solution, prior) for prior in accepted):
            continue
        else:
            accepted.append(solution)
        yield index, key, solution


def _consume(
    prepared: "_PreparedGroup",
    limits: GciLimits,
    candidates: Iterator[tuple[int, Any, dict[Node, Nfa]]],
) -> Iterator[dict[Node, Nfa]]:
    """The stage-5 consumer: dedupe, subsumption, caps.

    Three regimes, all reading the same producer stream:

    * ``prune_subsumed=False`` or ``max_solutions == 1`` — stream
      candidates straight through (the paper's Sec. 3.5 first-solution
      behaviour).
    * pruning with ``dedupe=False`` — the legacy collect-everything
      pairwise scan; mutually-equal candidates subsume each other, a
      corner the frontier below cannot reproduce.
    * pruning with dedupe (the default) — an online *maximal frontier*:
      a candidate subsumed by an incumbent is dropped on arrival,
      incumbents subsumed by a new candidate leave the frontier, and —
      when ``maximize`` is off, so candidate languages are bounded by
      their slices — the enumeration stops early once the first
      ``max_solutions`` frontier members are provably unsubsumable by
      any future combination (:func:`_member_is_safe`).

    The frontier's final content equals the survivors of the full
    pairwise scan (domination is transitive, and dedupe guarantees no
    symmetric ties), in canonical index order — so results are
    identical to eager enumerate-then-prune, only cheaper.
    """
    try:
        cap = limits.max_solutions
        if not limits.prune_subsumed or cap == 1:
            source = (
                _deduped(prepared, limits, candidates)
                if limits.dedupe
                else candidates
            )
            yielded = 0
            for _, _, solution in source:
                yield solution
                yielded += 1
                if cap is not None and yielded >= cap:
                    return
            return

        if not limits.dedupe:
            collected = [solution for _, _, solution in candidates]
            keep: list[dict[Node, Nfa]] = []
            for idx, solution in enumerate(collected):
                subsumed = False
                for jdx, other in enumerate(collected):
                    if idx == jdx:
                        continue
                    if _pointwise_subset(solution, other):
                        subsumed = True
                        break
                if not subsumed:
                    keep.append(solution)
            yield from keep[:cap] if cap is not None else keep
            return

        frontier: list[tuple[int, Any, dict[Node, Nfa]]] = []
        safety: dict[int, bool] = {}
        for index, key, solution in _deduped(prepared, limits, candidates):
            dominated = False
            for _, _, incumbent in frontier:
                # is_subset is signature-memoized when a language cache
                # is active, so this scan costs one inclusion check per
                # distinct language pair rather than per solution pair.
                if _pointwise_subset(solution, incumbent):
                    # Dedupe removed equal solutions, so pointwise ⊆
                    # here means strictly smaller somewhere; symmetric
                    # ties cannot arise.
                    dominated = True
                    break
            if dominated:
                continue
            frontier = [
                item
                for item in frontier
                if not _pointwise_subset(item[2], solution)
            ]
            frontier.append((index, key, solution))
            if cap is None or limits.maximize or len(frontier) < cap:
                continue
            # Maximization can grow a later candidate past its slices,
            # so the safety argument below only holds for raw slices.
            exhausted = True
            for member_index, _, member in frontier[:cap]:
                verdict = safety.get(member_index)
                if verdict is None:
                    verdict = _member_is_safe(prepared, member_index, member)
                    safety[member_index] = verdict
                if not verdict:
                    exhausted = False
                    break
            if exhausted:
                break
        if cap is not None:
            frontier = frontier[:cap]
        for _, _, solution in frontier:
            yield solution
    finally:
        candidates.close()


def _member_is_safe(
    prepared: "_PreparedGroup", index: int, solution: dict[Node, Nfa]
) -> bool:
    """Can any not-yet-seen combination pointwise subsume ``solution``?

    A future subsumer must pick, at some tag, an edge different from
    this member's choice.  Every alternative edge is checked: if some
    variable occurrence adjacent to the tag has, for *every* completion
    of its other boundary tag, a slice that does not contain the
    member's language for that variable, then no combination through
    that edge can dominate the member (a candidate's language is always
    contained in each of its occurrence slices — which is why this is
    only sound with ``maximize`` off).  Tags with no adjacent variable
    occurrence cannot change variable languages at all: a combination
    differing only there is a language-duplicate, which dedupe already
    drops.  If every alternative everywhere is blocked, the member is
    *safe* — it will survive the full enumeration.
    """
    chosen = _combo_at(prepared, index)
    for tag in prepared.tag_order:
        edges = prepared.edges_by_tag[tag]
        if len(edges) == 1:
            continue
        adjacent = [
            (occ_index, occ)
            for occ_index, occ in enumerate(prepared.occurrences)
            if occ.node.is_var and _occ_adjacent(occ, tag)
        ]
        if not adjacent:
            continue
        own = chosen[tag]
        for alt in edges:
            if alt == own:
                continue
            if not any(
                _occ_blocks(prepared, occ_index, occ, tag, alt, solution)
                for occ_index, occ in adjacent
            ):
                return False
    return True


def _occ_adjacent(occ: _Occurrence, tag: BridgeTag) -> bool:
    return (occ.start_of[0] != "machine" and occ.start_of[1] is tag) or (
        occ.final_of[0] != "machine" and occ.final_of[1] is tag
    )


def _occ_blocks(
    prepared: "_PreparedGroup",
    occ_index: int,
    occ: _Occurrence,
    tag: BridgeTag,
    alt: tuple[int, int],
    solution: dict[Node, Nfa],
) -> bool:
    """Does ``occ`` rule out every combination choosing ``alt`` at
    ``tag`` as a subsumer of ``solution``?  True iff the member's
    language for the occurrence's variable escapes the slice for every
    completion of the occurrence's other boundary."""
    start_tag = occ.start_of[1] if occ.start_of[0] != "machine" else None
    final_tag = occ.final_of[1] if occ.final_of[0] != "machine" else None
    if start_tag is tag and final_tag is tag:
        boundaries = [(alt, alt)]
    elif start_tag is tag:
        completions = (
            prepared.edges_by_tag[final_tag] if final_tag is not None else [None]
        )
        boundaries = [(alt, other) for other in completions]
    elif final_tag is tag:
        completions = (
            prepared.edges_by_tag[start_tag] if start_tag is not None else [None]
        )
        boundaries = [(other, alt) for other in completions]
    else:  # pragma: no cover - caller filters by adjacency
        return False
    language = solution[occ.node]
    for start_edge, final_edge in boundaries:
        piece = _occurrence_slice(
            prepared.machines,
            occ,
            occ_index,
            start_edge,
            final_edge,
            prepared.slice_memo,
        )
        # An empty slice blocks trivially: the member's language is
        # non-empty (viable candidates never map a variable to ∅).
        if piece is not None and is_subset(language, piece):
            return False
    return True


def _prepare_group(
    graph: DepGraph,
    group: set[Node],
    limits: GciLimits,
) -> Optional[_PreparedGroup]:
    alphabet = graph.alphabet
    leaves = {n for n in group if not n.is_temp}
    ordered_temps = graph.group_temps_in_order(group)

    def const_machine(node: Node) -> Nfa:
        # ε-eliminated constants keep bridge images one-per-crossing.
        return ops.eliminate_epsilon(graph.machine(node))

    # -- Stage 1: leaf machines, subset constraints first (invariant 1).
    # dprle-lint: identity-sensitive
    # Stage 1/2 machines carry the start/final structure the stage-4
    # bridge images are read from; signature-keyed cache substitution
    # here is the PR 2 bug (L002 enforces this — docs/LINTING.md).
    machines: dict[Node, Nfa] = {}
    for leaf in sorted(leaves, key=lambda n: n.name):
        if leaf.is_var:
            base = Nfa.universal(alphabet)
        else:
            base = const_machine(leaf)
        for const_node in graph.inbound_subsets(leaf):
            # Uncached product, never ops.intersect: this machine's
            # start/final structure determines the stage-4 bridge images
            # (|finals(left)| × |starts(right)| ε-edges per concat), and
            # a signature-keyed cache hit may substitute a language-equal
            # machine with different structure — merging distinct
            # crossings and dropping maximal disjuncts depending on what
            # the cache happened to see first.
            base, _ = ops.product(base, const_machine(const_node))
            base = base.trim()
        if limits.minimize_leaves:
            # dprle-lint: disable=L002 -- deliberate opt-in: collapsing leaf structure BEFORE any bridge tag exists is sound; the flag defaults off
            base = minimize_nfa(base)
        machines[leaf] = base

    # -- Stage 2: temp machines bottom-up; every concatenation gets a
    # bridge tag, every inbound subset is a product on the result.
    tags: dict[Node, BridgeTag] = {}
    for temp in ordered_temps:
        pair = graph.concat_of(temp)
        assert pair is not None
        tag = BridgeTag(temp.name)
        tags[temp] = tag
        machine = ops.concat(machines[pair.left], machines[pair.right], tag)
        for const_node in graph.inbound_subsets(temp):
            machine, _ = ops.product(machine, const_machine(const_node))
            machine = machine.trim()
        machines[temp] = machine

    # -- Stage 3: top machines and the leaf occurrences inside them.
    tops = graph.top_temps(group)
    occurrences: list[_Occurrence] = []
    tags_by_top: dict[Node, list[BridgeTag]] = {}

    def walk(node: Node, top: Node, start_of: tuple, final_of: tuple) -> None:
        if node.is_temp and node in group:
            pair = graph.concat_of(node)
            assert pair is not None
            tag = tags[node]
            tags_by_top[top].append(tag)
            walk(pair.left, top, start_of, ("edge-src", tag))
            walk(pair.right, top, ("edge-dst", tag), final_of)
        else:
            occurrences.append(_Occurrence(node, top, start_of, final_of))

    for top in tops:
        tags_by_top[top] = []
        walk(top, top, ("machine",), ("machine",))

    # -- Stage 4: candidate bridge edges per tag, read off the final top
    # machines (the images of each concatenation ε under the products).
    edges_by_tag: dict[BridgeTag, list[tuple[int, int]]] = {
        tag: [] for tag in tags.values()
    }
    for top in tops:
        machine = machines[top]
        live = machine.live_states()
        for src, edge in sorted(
            machine.edges(), key=lambda item: (item[0], item[1].dst)
        ):
            if edge.tag is None or edge.tag not in edges_by_tag:
                continue
            if src in live and edge.dst in live:
                edges_by_tag[edge.tag].append((src, edge.dst))

    tag_order = [tag for top in tops for tag in tags_by_top[top]]
    for tag in tag_order:
        if not edges_by_tag[tag]:
            return None  # some concatenation is unrealizable

    total_combinations = 1
    for tag in tag_order:
        total_combinations *= len(edges_by_tag[tag])
    if total_combinations > limits.max_combinations:
        raise RuntimeError(
            f"CI-group requires {total_combinations} bridge combinations "
            f"(limit {limits.max_combinations})"
        )

    # -- Stage 4.5: combination-space factoring.  A bridge edge whose
    # slice is empty for one of its occurrences under every completion,
    # or whose slice misses every partner slice of another occurrence
    # of the same (shared) variable, can appear in no viable
    # combination; dropping it shrinks the product that stage 5 walks.
    # The slices and pairwise intersections computed here seed the
    # memos the enumeration reuses.
    slice_memo: dict[tuple, Optional[Nfa]] = {}
    pair_memo: dict[tuple, Optional[Nfa]] = {}
    with obs.span("gci_factor", tags=len(tag_order)):
        factorable = _factor_edges(
            machines, occurrences, tag_order, edges_by_tag, slice_memo, pair_memo
        )
    if not factorable:
        return None  # some tag lost all its edges: unrealizable
    factored_combinations = 1
    for tag in tag_order:
        factored_combinations *= len(edges_by_tag[tag])

    # Flattened leaf sequences per constrained temp, for maximization:
    # the subtree of temp ``t`` denotes the concatenation of its leaves
    # in order, and must be ⊆ every constant on ``t``.
    constraint_specs: list[tuple[Nfa, list[Node]]] = []
    if limits.maximize:
        for temp in ordered_temps:
            inbound = graph.inbound_subsets(temp)
            if not inbound:
                continue
            leaf_seq = _flatten_leaves(graph, group, temp)
            for const_node in inbound:
                constraint_specs.append((const_machine(const_node), leaf_seq))

    var_nodes = sorted((n for n in leaves if n.is_var), key=lambda n: n.name)
    prepared = _PreparedGroup(
        machines=machines,
        occurrences=occurrences,
        tag_order=tag_order,
        edges_by_tag=edges_by_tag,
        constraint_specs=constraint_specs,
        var_nodes=var_nodes,
        leaves=leaves,
        total_combinations=total_combinations,
        factored_combinations=factored_combinations,
        slice_memo=slice_memo,
        pair_memo=pair_memo,
    )
    if limits.plan != "off":
        from .plan import build_plan

        prepared.plan = build_plan(prepared, limits)
    return prepared


def _factor_edges(
    machines: dict[Node, Nfa],
    occurrences: list[_Occurrence],
    tag_order: list[BridgeTag],
    edges_by_tag: dict[BridgeTag, list[tuple[int, int]]],
    memo: dict[tuple, Optional[Nfa]],
    pair_memo: dict[tuple, Optional[Nfa]],
) -> bool:
    """Drop bridge edges that admit no viable combination; fixpoint.

    Two per-edge tests, neither needing a full product walk:

    * *Boundary viability* — the occurrence's slice must be non-empty
      for at least one completion of its other boundary.  For groups
      built by :func:`_prepare_group` this is a defensive no-op: stage
      4 keeps only live edges, and a live edge's target always reaches
      the finals through *some* completing edge, so one completion is
      always non-empty.  It guards hand-assembled groups.
    * *Share viability* — a variable occurring in several
      concatenations is assigned the *intersection* of its slices, so
      an edge whose slice has an empty intersection with every partner
      slice of some other occurrence of the same variable is dead.
      This is a language check, not a reachability check, and it is
      what actually fires in practice (e.g. a shared middle variable
      squeezed between an ``a``-only and a ``b``-only neighbour).  The
      pairwise intersections land in ``pair_memo``, where
      :func:`_slice_combination` reuses them, so factoring fronts
      enumeration work instead of duplicating it.

    Removing an edge can strand edges of a neighbouring tag (their
    only non-empty partners are gone), hence the fixpoint loop.
    Returns False when a tag loses every edge (the group is
    unrealizable).
    """
    # Single-tagged-boundary occurrences of each shared variable: the
    # slice is determined by one edge choice, so the pairwise check is
    # |edges| x |edges| at worst (and early-exits per edge).  Doubly
    # tagged occurrences would multiply completions; they are left to
    # the per-combination check.
    shares: dict[Node, list[tuple[int, BridgeTag, str]]] = {}
    for occ_index, occ in enumerate(occurrences):
        if not occ.node.is_var:
            continue
        start_tag = occ.start_of[1] if occ.start_of[0] != "machine" else None
        final_tag = occ.final_of[1] if occ.final_of[0] != "machine" else None
        if (start_tag is None) == (final_tag is None):
            continue
        if start_tag is not None:
            shares.setdefault(occ.node, []).append(
                (occ_index, start_tag, "start")
            )
        else:
            shares.setdefault(occ.node, []).append(
                (occ_index, final_tag, "final")
            )

    changed = True
    while changed:
        changed = False
        for occ_index, occ in enumerate(occurrences):
            start_tag = occ.start_of[1] if occ.start_of[0] != "machine" else None
            final_tag = occ.final_of[1] if occ.final_of[0] != "machine" else None
            if start_tag is None and final_tag is None:
                continue

            def viable(start_edge, final_edge) -> bool:
                return (
                    _occurrence_slice(
                        machines, occ, occ_index, start_edge, final_edge, memo
                    )
                    is not None
                )

            if start_tag is not None and start_tag is final_tag:
                kept = [e for e in edges_by_tag[start_tag] if viable(e, e)]
                if len(kept) != len(edges_by_tag[start_tag]):
                    edges_by_tag[start_tag] = kept
                    changed = True
                    if not kept:
                        return False
                continue
            if start_tag is not None:
                completions = (
                    edges_by_tag[final_tag]
                    if final_tag is not None
                    else [None]
                )
                kept = [
                    e
                    for e in edges_by_tag[start_tag]
                    if any(viable(e, other) for other in completions)
                ]
                if len(kept) != len(edges_by_tag[start_tag]):
                    edges_by_tag[start_tag] = kept
                    changed = True
                    if not kept:
                        return False
            if final_tag is not None:
                completions = (
                    edges_by_tag[start_tag]
                    if start_tag is not None
                    else [None]
                )
                kept = [
                    e
                    for e in edges_by_tag[final_tag]
                    if any(viable(other, e) for other in completions)
                ]
                if len(kept) != len(edges_by_tag[final_tag]):
                    edges_by_tag[final_tag] = kept
                    changed = True
                    if not kept:
                        return False

        for node, occs in shares.items():
            if len(occs) < 2:
                continue
            for i1, tag1, side1 in occs:
                def key_of(i, side, edge):
                    return (i, edge, None) if side == "start" else (i, None, edge)

                def partnered(edge) -> bool:
                    key1 = key_of(i1, side1, edge)
                    for i2, tag2, side2 in occs:
                        if i2 == i1:
                            continue
                        # A tag shared by both occurrences pins both
                        # boundaries to the *same* chosen edge.
                        partners = [edge] if tag2 is tag1 else edges_by_tag[tag2]
                        if not any(
                            _share_intersection(
                                machines,
                                occurrences,
                                key1,
                                key_of(i2, side2, partner),
                                memo,
                                pair_memo,
                            )
                            is not None
                            for partner in partners
                        ):
                            return False
                    return True

                kept = [e for e in edges_by_tag[tag1] if partnered(e)]
                if len(kept) != len(edges_by_tag[tag1]):
                    edges_by_tag[tag1] = kept
                    changed = True
                    if not kept:
                        return False
    return True


def _share_intersection(
    machines: dict[Node, Nfa],
    occurrences: list[_Occurrence],
    key1: tuple,
    key2: tuple,
    memo: dict[tuple, Optional[Nfa]],
    pair_memo: dict[tuple, Optional[Nfa]],
) -> Optional[Nfa]:
    """Trimmed intersection of two occurrence slices, memoized.

    ``key1``/``key2`` are slice-memo keys ``(occ index, start edge,
    final edge)`` of two occurrences of the same variable; the memoized
    machine is shared, so callers must ``copy()`` before handing it out
    as part of a solution.  ``None`` means the intersection is empty.
    """
    pair_key = (key1, key2) if key1[0] < key2[0] else (key2, key1)
    if pair_key in pair_memo:
        obs.increment_metric("gci.pair_memo_hits")
        return pair_memo[pair_key]
    obs.increment_metric("gci.pair_memo_misses")
    a = _occurrence_slice(
        machines, occurrences[key1[0]], key1[0], key1[1], key1[2], memo
    )
    b = _occurrence_slice(
        machines, occurrences[key2[0]], key2[0], key2[1], key2[2], memo
    )
    if a is None or b is None:
        result = None
    else:
        intersection = ops.intersect(a, b).trim()
        result = None if intersection.is_empty() else intersection
    # dprle-lint: disable=L001 -- pair_memo is a documented out-param accumulator, not machine state
    pair_memo[pair_key] = result
    return result


def _occurrence_slice(
    machines: dict[Node, Nfa],
    occ: _Occurrence,
    occ_index: int,
    start_edge: Optional[tuple[int, int]],
    final_edge: Optional[tuple[int, int]],
    memo: dict[tuple, Optional[Nfa]],
) -> Optional[Nfa]:
    """The occurrence's sub-machine for one boundary choice, memoized.

    ``None`` boundaries keep the top machine's own starts/finals; a
    ``(src, dst)`` bridge edge sets the start to its destination
    (start-side) or the final to its source (final-side), exactly the
    paper's induce-from construction.  Returns ``None`` for an empty
    slice.  Memoized machines are shared across combinations — callers
    must copy before handing one out as (part of) a solution.
    """
    key = (occ_index, start_edge, final_edge)
    if key in memo:
        obs.increment_metric("gci.slice_memo_hits")
        return memo[key]
    obs.increment_metric("gci.slice_memo_misses")
    piece = machines[occ.top].copy()
    if start_edge is not None:
        piece.set_start(start_edge[1])
    if final_edge is not None:
        piece.set_final(final_edge[0])
    piece = piece.trim()
    result = None if piece.is_empty() else piece
    # dprle-lint: disable=L001 -- memo is a documented out-param accumulator, not machine state
    memo[key] = result
    return result


def _slice_combination(
    prepared: "_PreparedGroup",
    chosen: dict[BridgeTag, tuple[int, int]],
) -> Optional[dict[Node, Nfa]]:
    """Slice every occurrence for one bridge choice; None if any slice
    or any shared variable's intersection is empty."""
    slices: dict[Node, list[tuple[tuple, Nfa]]] = {
        node: [] for node in prepared.leaves
    }
    for occ_index, occ in enumerate(prepared.occurrences):
        start_edge = (
            chosen[occ.start_of[1]] if occ.start_of[0] != "machine" else None
        )
        final_edge = (
            chosen[occ.final_of[1]] if occ.final_of[0] != "machine" else None
        )
        piece = _occurrence_slice(
            prepared.machines,
            occ,
            occ_index,
            start_edge,
            final_edge,
            prepared.slice_memo,
        )
        if piece is None:
            return None
        slices[occ.node].append(((occ_index, start_edge, final_edge), piece))

    solution: dict[Node, Nfa] = {}
    for node in prepared.var_nodes:
        parts = slices[node]
        if len(parts) == 1:
            # The memoized slice is shared across combinations; the
            # solution must own its machine.
            machine = parts[0][1].copy()
        elif len(parts) == 2:
            # The common sharing shape; the intersection is memoized
            # (and may already be warm from the factoring pass).
            cached = _share_intersection(
                prepared.machines,
                prepared.occurrences,
                parts[0][0],
                parts[1][0],
                prepared.slice_memo,
                prepared.pair_memo,
            )
            if cached is None:
                return None
            machine = cached.copy()
        else:
            machine = parts[0][1]
            for _, part in parts[1:]:
                machine = ops.intersect(machine, part).trim()
            if machine.is_empty():
                return None
        solution[node] = machine
    return solution


def _flatten_leaves(graph: DepGraph, group: set[Node], temp: Node) -> list[Node]:
    """Leaf operands of ``temp``'s subtree, left to right."""
    pair = graph.concat_of(temp)
    assert pair is not None
    out: list[Node] = []
    for operand in pair.operands():
        if operand.is_temp and operand in group:
            out.extend(_flatten_leaves(graph, group, operand))
        else:
            out.append(operand)
    return out


def _maximize_solution(
    solution: dict[Node, Nfa],
    leaf_machines: dict[Node, Nfa],
    constraint_specs: list[tuple[Nfa, list[Node]]],
    var_nodes: list[Node],
    limits: GciLimits,
) -> dict[Node, Nfa]:
    """Close a satisfying candidate under the Galois maximization.

    For each variable in turn, compute the largest language that keeps
    every constraint satisfied with the *other* leaves fixed at their
    current values: for an occurrence with left context ``L`` and right
    context ``R`` inside a constraint ``⊆ c``, the admissible strings
    are ``LQ(L, RQ(c, R))`` (universal quotients).  Languages only grow
    (the current value is always admissible), so iterating to a fixed
    point — usually one round — yields a maximal assignment.
    """
    current: dict[Node, Nfa] = dict(solution)

    def value(node: Node) -> Nfa:
        if node in current:
            return current[node]
        return leaf_machines[node]  # constants stay fixed

    # A variable occurring twice in one constraint cannot be maximized
    # this way: the quotient for one occurrence holds the *other*
    # occurrence fixed at the current value, so the grown language is
    # not guaranteed to satisfy the constraint when substituted at both
    # positions simultaneously (e.g. v·v ⊆ c).  Such variables keep
    # their sliced (sound) value.
    nonlinear = {
        var
        for var in var_nodes
        for _, leaf_seq in constraint_specs
        if leaf_seq.count(var) > 1
    }

    for _ in range(limits.max_maximize_rounds):
        changed = False
        for var in var_nodes:
            if var in nonlinear:
                continue
            # The variable's own subset constraints are baked into its
            # stage-1 leaf machine.
            cap = leaf_machines[var]
            for const, leaf_seq in constraint_specs:
                for idx, leaf in enumerate(leaf_seq):
                    if leaf != var:
                        continue
                    left = _concat_all(
                        [value(n) for n in leaf_seq[:idx]], cap.alphabet
                    )
                    right = _concat_all(
                        [value(n) for n in leaf_seq[idx + 1 :]], cap.alphabet
                    )
                    admissible = ops.left_quotient(
                        left, ops.right_quotient(const, right)
                    )
                    cap = ops.intersect(cap, admissible).trim()
            if not is_subset(cap, current[var]):
                current[var] = cap
                changed = True
        if not changed:
            break
    return current


def _concat_all(parts: list[Nfa], alphabet) -> Nfa:
    if not parts:
        return Nfa.epsilon_only(alphabet)
    machine = parts[0]
    for part in parts[1:]:
        machine = ops.concat(machine, part)
    return machine


def _pointwise_equivalent(a: dict[Node, Nfa], b: dict[Node, Nfa]) -> bool:
    return all(equivalent(machine, b[node]) for node, machine in a.items())


def _pointwise_subset(a: dict[Node, Nfa], b: dict[Node, Nfa]) -> bool:
    return all(is_subset(machine, b[node]) for node, machine in a.items())
