"""Generalized Concatenation-Intersection over CI-groups (paper Fig. 8).

A *CI-group* is a connected component of the dependency graph's
concatenation edges (Sec. 3.4.3).  Solving one group generalizes the
basic CI algorithm along three axes:

* **Nesting** — ``(v1 · v2) · v3 ⊆ c4`` builds a tower of machines; a
  subset constraint on the top affects every operand below it.  We keep
  the paper's *shared solution representation* by making every
  operand's solution a literal sub-machine (a start/final boundary
  pair) of its top-level machine, so later intersections on the top
  machine automatically update the operands.
* **Operation ordering** — inbound subset constraints are applied to a
  node *before* its machine participates in a concatenation (the
  paper's first invariant, which the ``nid_5`` example motivates).
* **Sharing** — a variable that occurs as an operand of several
  concatenations receives one slice per occurrence; a candidate
  combination of bridge choices is a solution only if the slices'
  intersection is non-empty (the paper's "matching machines" check).

Three hygiene measures keep the output consistent with the paper's
*Maximal* property (Def. 3.1):

* Constant machines are ε-eliminated before any product.  ε-closure
  aliases of a crossing state would otherwise each produce a bridge
  image with a possibly *smaller* sliced language — satisfying but not
  maximal.  The paper's figures draw constants ε-free for this reason.
* Each candidate is *closed* under a Galois maximization: every
  variable is re-assigned the largest language that keeps all the
  group's constraints satisfied given the other variables' current
  values, computed with universal left/right quotients, until a fixed
  point.  This is what turns the per-ε-transition slices of the
  Sec. 3.1.1 example (``(xyy, z)``, ``(xyy, yyz)``, ``(xyyyy, z)``)
  into the paper's maximal answers ``A1 = (xyy, z|yyz)`` and
  ``A2 = (x(yy|yyyy), z)``.
* Surviving solutions that are pointwise subsumed by another solution
  (every variable's language a subset of the other's) are pruned.

The output is a list of disjunctive solutions, each mapping the group's
variable nodes to NFAs — one solution per surviving combination of
bridge-ε choices, exactly one choice per concatenation in the group.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from .. import obs
from ..automata import ops
from ..automata.dfa import minimize_nfa
from ..automata.equivalence import equivalent, is_subset
from ..automata.nfa import BridgeTag, Nfa
from ..cache import CacheLimits, active_cache
from ..constraints.depgraph import DepGraph, Node

__all__ = ["GciLimits", "solve_group", "group_solutions"]


@dataclass
class GciLimits:
    """Knobs bounding the (worst-case exponential) enumeration.

    ``prune_subsumed`` implements the Maximal property across a group's
    disjunctive solutions but requires eager enumeration; turn it off
    (or set ``max_solutions=1``) to get the paper's stream-the-first-
    solution behaviour (Sec. 3.5).  Note the cost consequence: with
    pruning on, ``max_solutions=N`` caps only the *returned* solutions —
    every bridge combination (up to ``max_combinations``) is still
    enumerated and maximized, because an early candidate can be subsumed
    by a later one.  Use ``prune_subsumed=False`` or ``max_solutions=1``
    when bounding work matters more than cross-solution maximality.

    ``cache`` requests a solver-scoped language cache
    (:class:`repro.cache.LangCache`) for the solve: the worklist solver
    activates one with these limits when no cache is already active.
    ``None`` leaves caching to the caller (:class:`RegLangSolver`
    installs its own).
    """

    max_solutions: Optional[int] = None
    max_combinations: int = 100_000
    dedupe: bool = True
    prune_subsumed: bool = True
    maximize: bool = True
    max_maximize_rounds: int = 3
    minimize_leaves: bool = False
    cache: Optional[CacheLimits] = None


@dataclass
class _Occurrence:
    """One leaf occurrence inside a top machine's expression tree.

    Boundary selectors are resolved against a chosen bridge-edge
    combination: ``("machine",)`` means the top machine's own
    starts/finals; ``("edge-src", tag)`` / ``("edge-dst", tag)`` mean
    the source/target state of the chosen ε-image for ``tag``.
    """

    node: Node
    top: Node
    start_of: tuple
    final_of: tuple


def solve_group(
    graph: DepGraph,
    group: set[Node],
    limits: Optional[GciLimits] = None,
) -> list[dict[Node, Nfa]]:
    """Solve one CI-group; returns its disjunctive solutions eagerly."""
    return list(group_solutions(graph, group, limits))


def group_solutions(
    graph: DepGraph,
    group: set[Node],
    limits: Optional[GciLimits] = None,
) -> Iterator[dict[Node, Nfa]]:
    """Enumerate a CI-group's disjunctive solutions.

    Yields ``{var node: machine}`` dictionaries; an exhausted iterator
    with no yields means the group admits no (non-empty) solutions.
    Enumeration is lazy unless ``prune_subsumed`` demands a global view
    — with pruning on (the default) and ``max_solutions != 1``, the full
    combination space is enumerated before anything is yielded, so
    ``max_solutions`` caps the output, not the work (see
    :class:`GciLimits`).
    """
    limits = limits or GciLimits()
    if not limits.prune_subsumed or limits.max_solutions == 1:
        yield from _enumerate(graph, group, limits)
        return
    # Pruning needs the full candidate set: an early candidate can be
    # subsumed by a *later* one, so truncating the enumeration at
    # max_solutions before pruning could return fewer surviving
    # solutions than exist.  Enumerate everything, prune, then cap.
    collected = list(
        _enumerate(graph, group, replace(limits, max_solutions=None))
    )
    keep: list[dict[Node, Nfa]] = []
    for idx, solution in enumerate(collected):
        subsumed = False
        for jdx, other in enumerate(collected):
            if idx == jdx:
                continue
            # is_subset is signature-memoized when a language cache is
            # active, so this scan costs one inclusion check per
            # distinct language pair rather than per solution pair.
            if _pointwise_subset(solution, other):
                # Equal solutions were already removed by dedupe, so
                # pointwise ⊆ here means strictly smaller somewhere;
                # symmetric ties cannot arise.
                subsumed = True
                break
        if not subsumed:
            keep.append(solution)
    if limits.max_solutions is not None:
        keep = keep[: limits.max_solutions]
    yield from keep


@dataclass
class _PreparedGroup:
    """Stages 1-4 of the GCI procedure: everything the combination
    enumeration (stage 5) needs, built once per group."""

    machines: dict[Node, Nfa]
    occurrences: list[_Occurrence]
    tag_order: list[BridgeTag]
    edges_by_tag: dict[BridgeTag, list[tuple[int, int]]]
    constraint_specs: list[tuple[Nfa, list[Node]]]
    var_nodes: list[Node]
    leaves: set[Node]
    total_combinations: int


def _enumerate(
    graph: DepGraph,
    group: set[Node],
    limits: GciLimits,
) -> Iterator[dict[Node, Nfa]]:
    # The machine-construction stages are the CI procedure proper
    # (concatenations + products); the span closes before enumeration
    # so bridge-combination costs are attributed separately below.
    with obs.span("ci", group_size=len(group)) as sp:
        prepared = _prepare_group(graph, group, limits)
        if prepared is None:
            # Some concatenation is unrealizable: no solutions.
            sp.set("combinations", 0)
            return
        sp.set("combinations", prepared.total_combinations)

    machines = prepared.machines
    occurrences = prepared.occurrences
    tag_order = prepared.tag_order
    edges_by_tag = prepared.edges_by_tag
    constraint_specs = prepared.constraint_specs
    var_nodes = prepared.var_nodes
    leaves = prepared.leaves

    # -- Stage 5: enumerate combinations; slice, intersect shares,
    # filter, then close each candidate under Galois maximization.
    cache = active_cache()
    accepted: list[dict[Node, Nfa]] = []
    seen_keys: set[tuple[str, ...]] = set()
    yielded = 0

    for combo in itertools.product(*(edges_by_tag[tag] for tag in tag_order)):
        with obs.span("gci_combination") as sp:
            chosen = dict(zip(tag_order, combo))
            solution = _slice_combination(
                machines, occurrences, chosen, var_nodes, leaves
            )
            duplicate = False
            key: Optional[tuple[str, ...]] = None
            if solution is not None:
                if limits.maximize:
                    solution = _maximize_solution(
                        solution, machines, constraint_specs, var_nodes, limits
                    )
                if limits.dedupe:
                    if cache is not None:
                        # Signature-set membership replaces the
                        # quadratic pairwise equivalence scan.
                        key = tuple(
                            cache.signature(solution[node])
                            for node in var_nodes
                        )
                        duplicate = key in seen_keys
                    else:
                        duplicate = any(
                            _pointwise_equivalent(solution, prior)
                            for prior in accepted
                        )
            sp.set("viable", solution is not None and not duplicate)
        if solution is None or duplicate:
            continue
        if key is not None:
            seen_keys.add(key)
        else:
            accepted.append(solution)
        yield solution
        yielded += 1
        if limits.max_solutions is not None and yielded >= limits.max_solutions:
            return


def _prepare_group(
    graph: DepGraph,
    group: set[Node],
    limits: GciLimits,
) -> Optional[_PreparedGroup]:
    alphabet = graph.alphabet
    leaves = {n for n in group if not n.is_temp}
    ordered_temps = graph.group_temps_in_order(group)

    def const_machine(node: Node) -> Nfa:
        # ε-eliminated constants keep bridge images one-per-crossing.
        return ops.eliminate_epsilon(graph.machine(node))

    # -- Stage 1: leaf machines, subset constraints first (invariant 1).
    machines: dict[Node, Nfa] = {}
    for leaf in sorted(leaves, key=lambda n: n.name):
        if leaf.is_var:
            base = Nfa.universal(alphabet)
        else:
            base = const_machine(leaf)
        for const_node in graph.inbound_subsets(leaf):
            # Uncached product, never ops.intersect: this machine's
            # start/final structure determines the stage-4 bridge images
            # (|finals(left)| × |starts(right)| ε-edges per concat), and
            # a signature-keyed cache hit may substitute a language-equal
            # machine with different structure — merging distinct
            # crossings and dropping maximal disjuncts depending on what
            # the cache happened to see first.
            base, _ = ops.product(base, const_machine(const_node))
            base = base.trim()
        if limits.minimize_leaves:
            base = minimize_nfa(base)
        machines[leaf] = base

    # -- Stage 2: temp machines bottom-up; every concatenation gets a
    # bridge tag, every inbound subset is a product on the result.
    tags: dict[Node, BridgeTag] = {}
    for temp in ordered_temps:
        pair = graph.concat_of(temp)
        assert pair is not None
        tag = BridgeTag(temp.name)
        tags[temp] = tag
        machine = ops.concat(machines[pair.left], machines[pair.right], tag)
        for const_node in graph.inbound_subsets(temp):
            machine, _ = ops.product(machine, const_machine(const_node))
            machine = machine.trim()
        machines[temp] = machine

    # -- Stage 3: top machines and the leaf occurrences inside them.
    tops = graph.top_temps(group)
    occurrences: list[_Occurrence] = []
    tags_by_top: dict[Node, list[BridgeTag]] = {}

    def walk(node: Node, top: Node, start_of: tuple, final_of: tuple) -> None:
        if node.is_temp and node in group:
            pair = graph.concat_of(node)
            assert pair is not None
            tag = tags[node]
            tags_by_top[top].append(tag)
            walk(pair.left, top, start_of, ("edge-src", tag))
            walk(pair.right, top, ("edge-dst", tag), final_of)
        else:
            occurrences.append(_Occurrence(node, top, start_of, final_of))

    for top in tops:
        tags_by_top[top] = []
        walk(top, top, ("machine",), ("machine",))

    # -- Stage 4: candidate bridge edges per tag, read off the final top
    # machines (the images of each concatenation ε under the products).
    edges_by_tag: dict[BridgeTag, list[tuple[int, int]]] = {
        tag: [] for tag in tags.values()
    }
    for top in tops:
        machine = machines[top]
        live = machine.live_states()
        for src, edge in sorted(
            machine.edges(), key=lambda item: (item[0], item[1].dst)
        ):
            if edge.tag is None or edge.tag not in edges_by_tag:
                continue
            if src in live and edge.dst in live:
                edges_by_tag[edge.tag].append((src, edge.dst))

    tag_order = [tag for top in tops for tag in tags_by_top[top]]
    for tag in tag_order:
        if not edges_by_tag[tag]:
            return None  # some concatenation is unrealizable

    total_combinations = 1
    for tag in tag_order:
        total_combinations *= len(edges_by_tag[tag])
    if total_combinations > limits.max_combinations:
        raise RuntimeError(
            f"CI-group requires {total_combinations} bridge combinations "
            f"(limit {limits.max_combinations})"
        )

    # Flattened leaf sequences per constrained temp, for maximization:
    # the subtree of temp ``t`` denotes the concatenation of its leaves
    # in order, and must be ⊆ every constant on ``t``.
    constraint_specs: list[tuple[Nfa, list[Node]]] = []
    if limits.maximize:
        for temp in ordered_temps:
            inbound = graph.inbound_subsets(temp)
            if not inbound:
                continue
            leaf_seq = _flatten_leaves(graph, group, temp)
            for const_node in inbound:
                constraint_specs.append((const_machine(const_node), leaf_seq))

    var_nodes = sorted((n for n in leaves if n.is_var), key=lambda n: n.name)
    return _PreparedGroup(
        machines=machines,
        occurrences=occurrences,
        tag_order=tag_order,
        edges_by_tag=edges_by_tag,
        constraint_specs=constraint_specs,
        var_nodes=var_nodes,
        leaves=leaves,
        total_combinations=total_combinations,
    )


def _slice_combination(
    machines: dict[Node, Nfa],
    occurrences: list[_Occurrence],
    chosen: dict[BridgeTag, tuple[int, int]],
    var_nodes: list[Node],
    leaves: set[Node],
) -> Optional[dict[Node, Nfa]]:
    """Slice every occurrence for one bridge choice; None if any slice
    or any shared variable's intersection is empty."""
    slices: dict[Node, list[Nfa]] = {node: [] for node in leaves}
    for occ in occurrences:
        machine = machines[occ.top]
        piece = machine.copy()
        if occ.start_of[0] != "machine":
            src, dst = chosen[occ.start_of[1]]
            piece.set_start(dst)
        if occ.final_of[0] != "machine":
            src, dst = chosen[occ.final_of[1]]
            piece.set_final(src)
        piece = piece.trim()
        if piece.is_empty():
            return None
        slices[occ.node].append(piece)

    solution: dict[Node, Nfa] = {}
    for node in var_nodes:
        parts = slices[node]
        machine = parts[0]
        for part in parts[1:]:
            machine = ops.intersect(machine, part).trim()
        if machine.is_empty():
            return None
        solution[node] = machine
    return solution


def _flatten_leaves(graph: DepGraph, group: set[Node], temp: Node) -> list[Node]:
    """Leaf operands of ``temp``'s subtree, left to right."""
    pair = graph.concat_of(temp)
    assert pair is not None
    out: list[Node] = []
    for operand in pair.operands():
        if operand.is_temp and operand in group:
            out.extend(_flatten_leaves(graph, group, operand))
        else:
            out.append(operand)
    return out


def _maximize_solution(
    solution: dict[Node, Nfa],
    leaf_machines: dict[Node, Nfa],
    constraint_specs: list[tuple[Nfa, list[Node]]],
    var_nodes: list[Node],
    limits: GciLimits,
) -> dict[Node, Nfa]:
    """Close a satisfying candidate under the Galois maximization.

    For each variable in turn, compute the largest language that keeps
    every constraint satisfied with the *other* leaves fixed at their
    current values: for an occurrence with left context ``L`` and right
    context ``R`` inside a constraint ``⊆ c``, the admissible strings
    are ``LQ(L, RQ(c, R))`` (universal quotients).  Languages only grow
    (the current value is always admissible), so iterating to a fixed
    point — usually one round — yields a maximal assignment.
    """
    current: dict[Node, Nfa] = dict(solution)

    def value(node: Node) -> Nfa:
        if node in current:
            return current[node]
        return leaf_machines[node]  # constants stay fixed

    # A variable occurring twice in one constraint cannot be maximized
    # this way: the quotient for one occurrence holds the *other*
    # occurrence fixed at the current value, so the grown language is
    # not guaranteed to satisfy the constraint when substituted at both
    # positions simultaneously (e.g. v·v ⊆ c).  Such variables keep
    # their sliced (sound) value.
    nonlinear = {
        var
        for var in var_nodes
        for _, leaf_seq in constraint_specs
        if leaf_seq.count(var) > 1
    }

    for _ in range(limits.max_maximize_rounds):
        changed = False
        for var in var_nodes:
            if var in nonlinear:
                continue
            # The variable's own subset constraints are baked into its
            # stage-1 leaf machine.
            cap = leaf_machines[var]
            for const, leaf_seq in constraint_specs:
                for idx, leaf in enumerate(leaf_seq):
                    if leaf != var:
                        continue
                    left = _concat_all(
                        [value(n) for n in leaf_seq[:idx]], cap.alphabet
                    )
                    right = _concat_all(
                        [value(n) for n in leaf_seq[idx + 1 :]], cap.alphabet
                    )
                    admissible = ops.left_quotient(
                        left, ops.right_quotient(const, right)
                    )
                    cap = ops.intersect(cap, admissible).trim()
            if not is_subset(cap, current[var]):
                current[var] = cap
                changed = True
        if not changed:
            break
    return current


def _concat_all(parts: list[Nfa], alphabet) -> Nfa:
    if not parts:
        return Nfa.epsilon_only(alphabet)
    machine = parts[0]
    for part in parts[1:]:
        machine = ops.concat(machine, part)
    return machine


def _pointwise_equivalent(a: dict[Node, Nfa], b: dict[Node, Nfa]) -> bool:
    return all(equivalent(machine, b[node]) for node, machine in a.items())


def _pointwise_subset(a: dict[Node, Nfa], b: dict[Node, Nfa]) -> bool:
    return all(is_subset(machine, b[node]) for node, machine in a.items())
