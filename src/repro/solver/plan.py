"""Symmetry-aware planning for the GCI stage-5 enumeration.

The bridge-combination space stage 5 walks is a mixed-radix product of
per-tag edge lists, and after the stage-4.5 factoring it still contains
two kinds of provably wasted work:

* **Equivalent choices.**  Two bridge edges of the same tag whose
  slices have equal canonical language signatures (:mod:`repro.cache`)
  for every adjacent occurrence — under every completion of the
  occurrence's other boundary — are *interchangeable*: swapping one for
  the other changes no candidate's language, so the stage-5 dedupe
  would drop every combination using the non-representative anyway,
  only after paying for its products and maximization.  The planner
  mines those equivalence classes up front and collapses each edge
  list to one representative per class
  (``gci.combinations_pruned_equiv``).
* **Provably non-viable combinations.**  The factoring pass already
  computed per-(occurrence, boundary) slices and pairwise share
  intersections (``slice_memo`` / ``pair_memo``).  Read as constraint
  tables over the combination digits, they prove many *individual*
  combinations empty even when no whole edge could be dropped.  The
  planner folds them into a viability bitmask over the collapsed
  space, so the enumeration iterates survivors only
  (``gci.combinations_pruned_plan``).

Both moves are exact with respect to the enumeration's output stream:

* Collapse keeps the *first* edge of each class, so substituting
  representatives for class members maps any dropped combination to a
  strictly smaller canonical index with a pointwise language-equal
  candidate — exactly the combination dedupe keeps first.  Collapse is
  therefore only applied when ``GciLimits.dedupe`` is on (and a
  language cache is active to compute signatures); the raw
  ``dedupe=False`` stream must see every structural candidate.
* The mask only clears combinations some constraint table proves
  ``_slice_combination`` would reject (an empty slice or an empty
  pairwise share intersection), so the surviving stream — indices,
  order, and machines — is identical to the unplanned walk.

The mask doubles as an exact per-chunk yield table: popcounts over
canonical index ranges feed the best-first chunk scheduling in
:mod:`repro.parallel` and the :class:`repro.check.cost.YieldModel`
marginal-rate predictor recorded in the planner telemetry.

Modes (``GciLimits.plan`` / ``--plan``): ``"off"`` (default, planner
never runs), ``"equiv"`` (class collapse only), ``"beam"`` (viability
mask + yield-ordered chunk scheduling only), ``"full"`` (both).
See ``docs/PLANNER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from .. import obs
from ..cache import active_cache
from ..check.cost import YieldModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..automata.nfa import BridgeTag
    from ..constraints.depgraph import Node
    from .gci import GciLimits, _Occurrence, _PreparedGroup

#: A bridge edge is a ``(src, dst)`` state pair; ``None`` boundaries
#: keep the top machine's own starts/finals.
Edge = Optional[tuple[int, int]]

__all__ = ["PLAN_MODES", "EnumerationPlan", "build_plan"]

#: Recognised ``GciLimits.plan`` values.
PLAN_MODES = ("off", "equiv", "beam", "full")


@dataclass
class EnumerationPlan:
    """The planner's verdict on one prepared CI-group.

    ``space`` is the collapsed index space (the product of the per-tag
    edge-list lengths after class collapse); ``mask`` is the viability
    bitmask over that space (bit ``i`` set ⇔ combination ``i`` may be
    viable), or ``None`` when the mode skips mask building.
    ``survivors`` is ``popcount(mask)`` (``space`` when there is no
    mask).  ``class_sizes`` records, per tag, the size of the class
    each kept representative stands for (all 1 when nothing collapsed).
    """

    mode: str
    space: int
    pruned_equiv: int
    pruned_plan: int
    survivors: int
    mask: Optional[int]
    class_sizes: dict[BridgeTag, list[int]] = field(default_factory=dict)
    yield_model: Optional[YieldModel] = None

    def iter_survivors(self, start: int, stop: int) -> Iterator[int]:
        """Canonical indices of surviving combinations in [start, stop)."""
        if self.mask is None:
            yield from range(start, stop)
            return
        window = (self.mask >> start) & ((1 << (stop - start)) - 1)
        while window:
            low = window & -window
            yield start + low.bit_length() - 1
            window ^= low

    def count_survivors(self, start: int, stop: int) -> int:
        """Exact survivor count in [start, stop) (a popcount)."""
        if self.mask is None:
            return max(0, stop - start)
        window = (self.mask >> start) & ((1 << (stop - start)) - 1)
        return window.bit_count()


def build_plan(
    prepared: "_PreparedGroup", limits: "GciLimits"
) -> Optional[EnumerationPlan]:
    """Plan the enumeration of ``prepared``; collapses its edge lists
    in place (the same contract as the stage-4.5 factoring).

    Returns ``None`` for ``plan="off"``.  Raises ``ValueError`` on an
    unknown mode — a typo must fail loudly, not silently disable the
    planner someone asked for.
    """
    mode = limits.plan
    if mode == "off":
        return None
    if mode not in PLAN_MODES:
        raise ValueError(
            f"unknown plan mode {mode!r} (expected one of {', '.join(PLAN_MODES)})"
        )
    base_space = prepared.factored_combinations
    with obs.span("gci_plan", mode=mode, base_space=base_space) as sp:
        class_sizes: dict[BridgeTag, list[int]] = {}
        if mode in ("equiv", "full"):
            class_sizes = _collapse_classes(prepared, limits)
        space = 1
        for tag in prepared.tag_order:
            space *= len(prepared.edges_by_tag[tag])
        pruned_equiv = base_space - space

        mask: Optional[int] = None
        survivors = space
        yield_model: Optional[YieldModel] = None
        if mode in ("beam", "full"):
            mask = _viability_mask(prepared)
            survivors = mask.bit_count()
            radices = [
                len(prepared.edges_by_tag[tag]) for tag in prepared.tag_order
            ]
            yield_model = YieldModel.from_mask(radices, mask)
        pruned_plan = space - survivors

        sp.set("space", space)
        sp.set("pruned_equiv", pruned_equiv)
        sp.set("pruned_plan", pruned_plan)
        sp.set("survivors", survivors)
    return EnumerationPlan(
        mode=mode,
        space=space,
        pruned_equiv=pruned_equiv,
        pruned_plan=pruned_plan,
        survivors=survivors,
        mask=mask,
        class_sizes=class_sizes,
        yield_model=yield_model,
    )


# -- equivalence-class mining ------------------------------------------------


def _occ_tags(
    occ: "_Occurrence",
) -> tuple[Optional["BridgeTag"], Optional["BridgeTag"]]:
    start_tag = occ.start_of[1] if occ.start_of[0] != "machine" else None
    final_tag = occ.final_of[1] if occ.final_of[0] != "machine" else None
    return start_tag, final_tag


def _collapse_classes(
    prepared: "_PreparedGroup", limits: "GciLimits"
) -> dict["BridgeTag", list[int]]:
    """Collapse each tag's edge list to one representative per
    signature-equivalence class; returns ``{tag: [class sizes]}``.

    Sound only under dedupe (class members' candidates are pointwise
    language-equal to the representative's, which arrives first in
    canonical order), and only computable with an active language
    cache; otherwise the lists are left untouched.
    """
    from .gci import _occurrence_slice

    cache = active_cache()
    if cache is None or not limits.dedupe:
        return {}

    def slice_profile(
        occ: "_Occurrence", occ_index: int, start_edge: Edge, final_edge: Edge
    ) -> object:
        piece = _occurrence_slice(
            prepared.machines,
            occ,
            occ_index,
            start_edge,
            final_edge,
            prepared.slice_memo,
        )
        if piece is None:
            return None
        if occ.node.is_var:
            # Variables contribute their slice's language to candidates:
            # interchangeability needs language equality, interned to a
            # dense per-cache class id.
            return cache.class_id(piece)
        # Constant slices only gate viability; any non-empty slice acts
        # the same.
        return True

    class_sizes: dict["BridgeTag", list[int]] = {}
    # Tags are collapsed in tag_order; a later tag's profiles range
    # over the *already collapsed* earlier lists, which is sound: only
    # representative completions are ever enumerated.
    for tag in prepared.tag_order:
        edges = prepared.edges_by_tag[tag]
        if len(edges) <= 1:
            class_sizes[tag] = [1] * len(edges)
            continue
        profiles: list[tuple[object, ...]] = []
        for edge in edges:
            profile: list[object] = []
            for occ_index, occ in enumerate(prepared.occurrences):
                start_tag, final_tag = _occ_tags(occ)
                if start_tag is not tag and final_tag is not tag:
                    continue
                if start_tag is tag and final_tag is tag:
                    profile.append(
                        slice_profile(occ, occ_index, edge, edge)
                    )
                elif start_tag is tag:
                    others = (
                        prepared.edges_by_tag[final_tag]
                        if final_tag is not None
                        else [None]
                    )
                    profile.append(
                        tuple(
                            slice_profile(occ, occ_index, edge, other)
                            for other in others
                        )
                    )
                else:
                    others = (
                        prepared.edges_by_tag[start_tag]
                        if start_tag is not None
                        else [None]
                    )
                    profile.append(
                        tuple(
                            slice_profile(occ, occ_index, other, edge)
                            for other in others
                        )
                    )
            profiles.append(tuple(profile))
        representatives: dict[tuple[object, ...], int] = {}
        kept: list[tuple[int, int]] = []
        sizes: list[int] = []
        for edge, profile in zip(edges, profiles):
            slot = representatives.get(profile)
            if slot is None:
                representatives[profile] = len(kept)
                kept.append(edge)
                sizes.append(1)
            else:
                sizes[slot] += 1
        if len(kept) != len(edges):
            prepared.edges_by_tag[tag] = kept
        class_sizes[tag] = sizes
    return class_sizes


# -- viability mask ----------------------------------------------------------


def _viability_mask(prepared: "_PreparedGroup") -> int:
    """A bitmask over the (collapsed) canonical index space with a set
    bit for every combination the factoring tables cannot refute.

    Exact in one direction only: a cleared bit is a proof (some slice
    or pairwise share intersection is empty, so
    ``_slice_combination`` returns ``None``); a set bit is merely
    "not refuted here" — three-way share intersections and
    doubly-tagged share pairs are left to the per-combination check.
    """
    from .gci import _share_intersection

    tag_pos = {tag: pos for pos, tag in enumerate(prepared.tag_order)}
    radices = [len(prepared.edges_by_tag[tag]) for tag in prepared.tag_order]

    # Unary constraints: per tag position, a boolean per digit.
    unary: list[list[bool]] = [[True] * r for r in radices]
    # Binary constraints: (pos1, pos2) -> row-major boolean matrix.
    binary: dict[tuple[int, int], list[bool]] = {}

    def binary_table(pos1: int, pos2: int) -> list[bool]:
        table = binary.get((pos1, pos2))
        if table is None:
            table = [True] * (radices[pos1] * radices[pos2])
            binary[(pos1, pos2)] = table
        return table

    from .gci import _occurrence_slice

    # Per-occurrence boundary viability over the collapsed lists.
    for occ_index, occ in enumerate(prepared.occurrences):
        start_tag, final_tag = _occ_tags(occ)
        if start_tag is None and final_tag is None:
            continue

        def viable(start_edge: Edge, final_edge: Edge) -> bool:
            return (
                _occurrence_slice(
                    prepared.machines,
                    occ,
                    occ_index,
                    start_edge,
                    final_edge,
                    prepared.slice_memo,
                )
                is not None
            )

        if start_tag is not None and start_tag is final_tag:
            allowed = unary[tag_pos[start_tag]]
            for digit, edge in enumerate(prepared.edges_by_tag[start_tag]):
                if allowed[digit] and not viable(edge, edge):
                    allowed[digit] = False
        elif start_tag is not None and final_tag is not None:
            pos1, pos2 = tag_pos[start_tag], tag_pos[final_tag]
            table = binary_table(pos1, pos2)
            edges1 = prepared.edges_by_tag[start_tag]
            edges2 = prepared.edges_by_tag[final_tag]
            for d1, e1 in enumerate(edges1):
                row = d1 * len(edges2)
                for d2, e2 in enumerate(edges2):
                    if table[row + d2] and not viable(e1, e2):
                        table[row + d2] = False
        elif start_tag is not None:
            allowed = unary[tag_pos[start_tag]]
            for digit, edge in enumerate(prepared.edges_by_tag[start_tag]):
                if allowed[digit] and not viable(edge, None):
                    allowed[digit] = False
        else:
            allowed = unary[tag_pos[final_tag]]
            for digit, edge in enumerate(prepared.edges_by_tag[final_tag]):
                if allowed[digit] and not viable(None, edge):
                    allowed[digit] = False

    # Pairwise share viability for singly-tagged occurrences of shared
    # variables — the same pairs the factoring's share test walks, so
    # ``pair_memo`` is warm for most of them.
    singly: dict["Node", list[tuple[int, "BridgeTag", str]]] = {}
    for occ_index, occ in enumerate(prepared.occurrences):
        if not occ.node.is_var:
            continue
        start_tag, final_tag = _occ_tags(occ)
        if (start_tag is None) == (final_tag is None):
            continue
        if start_tag is not None:
            singly.setdefault(occ.node, []).append(
                (occ_index, start_tag, "start")
            )
        else:
            singly.setdefault(occ.node, []).append(
                (occ_index, final_tag, "final")
            )

    def key_of(i: int, side: str, edge: tuple[int, int]) -> tuple[object, ...]:
        return (i, edge, None) if side == "start" else (i, None, edge)

    for node, occs in singly.items():
        for a in range(len(occs)):
            i1, tag1, side1 = occs[a]
            for b in range(a + 1, len(occs)):
                i2, tag2, side2 = occs[b]
                edges1 = prepared.edges_by_tag[tag1]
                if tag1 is tag2:
                    # One shared tag pins both boundaries to one edge.
                    allowed = unary[tag_pos[tag1]]
                    for digit, edge in enumerate(edges1):
                        if allowed[digit] and (
                            _share_intersection(
                                prepared.machines,
                                prepared.occurrences,
                                key_of(i1, side1, edge),
                                key_of(i2, side2, edge),
                                prepared.slice_memo,
                                prepared.pair_memo,
                            )
                            is None
                        ):
                            allowed[digit] = False
                    continue
                pos1, pos2 = tag_pos[tag1], tag_pos[tag2]
                if pos1 > pos2:
                    pos1, pos2 = pos2, pos1
                    (i1, tag1, side1), (i2, tag2, side2) = (
                        (i2, tag2, side2),
                        (i1, tag1, side1),
                    )
                    edges1 = prepared.edges_by_tag[tag1]
                table = binary_table(pos1, pos2)
                edges2 = prepared.edges_by_tag[tag2]
                for d1, e1 in enumerate(edges1):
                    row = d1 * len(edges2)
                    for d2, e2 in enumerate(edges2):
                        if table[row + d2] and (
                            _share_intersection(
                                prepared.machines,
                                prepared.occurrences,
                                key_of(i1, side1, e1),
                                key_of(i2, side2, e2),
                                prepared.slice_memo,
                                prepared.pair_memo,
                            )
                            is None
                        ):
                            table[row + d2] = False

    # Fold the tables into a bitmask by one mixed-radix walk.
    space = 1
    for radix in radices:
        space *= radix
    npos = len(radices)
    binary_items = [
        (pos1, pos2, radices[pos2], table)
        for (pos1, pos2), table in binary.items()
    ]
    mask = 0
    digits = [0] * npos
    for index in range(space):
        ok = True
        for pos in range(npos):
            if not unary[pos][digits[pos]]:
                ok = False
                break
        if ok:
            for pos1, pos2, radix2, table in binary_items:
                if not table[digits[pos1] * radix2 + digits[pos2]]:
                    ok = False
                    break
        if ok:
            mask |= 1 << index
        for pos in range(npos - 1, -1, -1):
            digits[pos] += 1
            if digits[pos] < radices[pos]:
                break
            digits[pos] = 0
    return mask
