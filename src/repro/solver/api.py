"""High-level solver facade: the public entry point most users want.

>>> from repro.solver.api import RegLangSolver
>>> s = RegLangSolver()
>>> v1 = s.var("v1")
>>> s.require_match(v1, r"/[\\d]+$/")          # preg_match filter
>>> s.require(s.literal("nid_").concat(v1), s.pattern("contains_quote", ".*'.*"))
>>> result = s.solve()
>>> result.satisfiable
True
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from .. import obs
from ..automata.alphabet import BYTE_ALPHABET, Alphabet
from ..automata.nfa import Nfa
from ..cache import CacheLimits, LangCache
from ..constraints.dsl import parse_problem
from ..constraints.terms import Const, Problem, Subset, Term, Var
from ..regex import parse as parse_match_regex
from ..regex import to_nfa
from .assignments import SolutionSet
from .gci import GciLimits
from .worklist import solve as solve_problem

__all__ = ["RegLangSolver"]


class RegLangSolver:
    """An incremental builder for RMA instances, plus solving.

    The low-level pieces (:class:`~repro.constraints.terms.Problem`,
    :func:`~repro.solver.worklist.solve`) stay available for users who
    want to manage terms themselves; this class only handles naming and
    bookkeeping.
    """

    def __init__(
        self,
        alphabet: Alphabet = BYTE_ALPHABET,
        cache: Optional[CacheLimits] = None,
        workers: Optional[int] = None,
        precheck: bool = False,
        backend: Optional[str] = None,
        plan: Optional[str] = None,
    ):
        self.alphabet = alphabet
        # Default fan-out for solves (see repro.parallel): None defers
        # to GciLimits/DPRLE_WORKERS, 0 forces serial, N>0 uses a pool.
        self.workers = workers
        # Opt-in sound pruning via the repro.check abstract domains
        # (solution-preserving; see docs/DIAGNOSTICS.md).
        self.precheck = precheck
        # Automata kernel set for solves (see repro.automata.backend):
        # None defers to GciLimits/use_backend/DPRLE_BACKEND.
        self.backend = backend
        # Enumeration planner mode (see repro.solver.plan): one of
        # "off"/"equiv"/"beam"/"full"; None defers to GciLimits.
        self.plan = plan
        self._constraints: list[Subset] = []
        self._vars: dict[str, Var] = {}
        self._consts: dict[str, Const] = {}
        self._anon_counter = 0
        self._scopes: list[int] = []
        # One language cache for the solver's lifetime: incremental
        # push/pop solves re-hit signatures computed by earlier solves.
        self.cache = LangCache(cache if cache is not None else CacheLimits())

    # -- term construction ------------------------------------------------

    def var(self, name: str) -> Var:
        """Declare (or fetch) a language variable."""
        if name in self._consts:
            raise ValueError(f"{name!r} is already a constant")
        return self._vars.setdefault(name, Var(name))

    def pattern(self, name: str, pattern: str) -> Const:
        """A named constant from a language-level regex (no anchors)."""
        return self._intern(Const.from_regex(name, pattern, self.alphabet))

    def literal(self, text: str, name: Optional[str] = None) -> Const:
        """A constant holding exactly ``text``."""
        return self._intern(
            Const.from_literal(name or self._fresh_name(), text, self.alphabet)
        )

    def match_pattern(self, name: str, pattern: str) -> Const:
        """A constant with ``preg_match`` semantics (Σ*-padded sides)."""
        body = pattern[1:-1] if pattern.startswith("/") else pattern
        spec = parse_match_regex(body, self.alphabet)
        machine = to_nfa(spec.search(), self.alphabet)
        return self._intern(Const(name, machine, source=f"m/{body}/"))

    def machine_const(self, name: str, machine: Nfa) -> Const:
        """A constant from an explicit NFA."""
        return self._intern(Const(name, machine))

    def _intern(self, const: Const) -> Const:
        if const.name in self._vars:
            raise ValueError(f"{const.name!r} is already a variable")
        existing = self._consts.get(const.name)
        if existing is not None:
            return existing
        self._consts[const.name] = const
        return const

    def _fresh_name(self) -> str:
        self._anon_counter += 1
        return f"%c{self._anon_counter}"

    # -- constraints --------------------------------------------------------

    def require(self, lhs: Term, rhs: Const) -> None:
        """Add the constraint ``lhs ⊆ rhs``."""
        self._constraints.append(Subset(lhs, rhs))

    def require_match(self, term: Term, delimited_pattern: str) -> None:
        """Add ``term ⊆ L(preg_match pattern)`` — the common filter shape."""
        name = self._fresh_name()
        self.require(term, self.match_pattern(name, delimited_pattern))

    def add_dsl(self, text: str) -> None:
        """Append the constraints of a DSL fragment (standalone namespace)."""
        problem = parse_problem(text, self.alphabet)
        self._constraints.extend(problem.constraints)

    # -- scopes (SMT-solver style push/pop) --------------------------------

    def push(self) -> None:
        """Open a backtracking scope: constraints added after ``push``
        are discarded by the matching :meth:`pop` — the familiar
        incremental-solver workflow (try a hypothesis, retract it)."""
        self._scopes.append(len(self._constraints))

    def pop(self) -> None:
        """Discard every constraint added since the matching ``push``."""
        if not self._scopes:
            raise ValueError("pop without a matching push")
        self._constraints = self._constraints[: self._scopes.pop()]

    def num_scopes(self) -> int:
        return len(self._scopes)

    # -- solving ----------------------------------------------------------

    def problem(self) -> Problem:
        """The RMA instance accumulated so far."""
        return Problem(list(self._constraints), alphabet=self.alphabet)

    def solve(
        self,
        query: Optional[list[str]] = None,
        max_solutions: Optional[int] = None,
        limits: Optional[GciLimits] = None,
        only: Optional[list[str]] = None,
        collect_stats: bool = False,
        journal=None,
    ) -> SolutionSet:
        """Solve the accumulated instance (see :func:`repro.solver.solve`).

        With ``collect_stats=True`` the solve runs under an
        observability collector (:mod:`repro.obs`) and the returned
        :class:`SolutionSet` carries it as ``result.stats`` — a span
        trace of where the solve spent its time plus a metrics
        snapshot (``result.stats.to_dict()`` for the JSON form).

        ``journal`` (a path or open text stream) additionally streams
        the solve as a JSONL event journal (:mod:`repro.obs.journal`)
        — per-solve trace IDs, span open/close events with wall and
        CPU seconds, and heartbeat progress from the GCI enumeration.
        Both sinks may be active at once; they see the same events.

        Every solve runs under the solver's language cache
        (``self.cache``), so repeated solves — the push/pop workflow —
        reuse signatures and memoized automata across calls.  Construct
        the solver with ``CacheLimits(enabled=False)`` to opt out.
        """
        from contextlib import ExitStack

        if self.workers is not None and (limits is None or limits.workers is None):
            limits = replace(limits or GciLimits(), workers=self.workers)
        if self.precheck and (limits is None or not limits.precheck):
            limits = replace(limits or GciLimits(), precheck=True)
        if self.backend is not None and (limits is None or limits.backend is None):
            limits = replace(limits or GciLimits(), backend=self.backend)
        if self.plan is not None and (limits is None or limits.plan == "off"):
            limits = replace(limits or GciLimits(), plan=self.plan)
        with self.cache.activate(), ExitStack() as stack:
            if journal is not None:
                stack.enter_context(obs.journal_to(journal))
            collector = (
                stack.enter_context(obs.collect()) if collect_stats else None
            )
            result = solve_problem(
                self.problem(),
                query=query,
                max_solutions=max_solutions,
                limits=limits,
                only=only,
            )
        if collector is not None:
            result.stats = collector
        return result
