"""Re-export of :mod:`repro.stats` under the solver namespace.

The cost model lives at the package root so the automata substrate can
use it without importing the solver; this alias keeps the import path
the design document advertises.
"""

from ..stats import CostTracker, count_operation, current, measure, visit_states

__all__ = ["CostTracker", "measure", "visit_states", "count_operation", "current"]
