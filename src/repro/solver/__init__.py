"""The decision procedure: CI, generalized CI, and the worklist solver."""

from .api import RegLangSolver
from .assignments import Assignment, SolutionSet
from .ci import CiSolution, concat_intersect
from .gci import GciLimits, group_solutions, solve_group
from .verify import (
    AssignmentReport,
    CiReport,
    addable_strings,
    check_assignment,
    check_ci_properties,
    term_machine,
)
from .worklist import solve, solve_graph

__all__ = [
    "Assignment",
    "SolutionSet",
    "CiSolution",
    "concat_intersect",
    "GciLimits",
    "solve_group",
    "group_solutions",
    "solve",
    "solve_graph",
    "RegLangSolver",
    "AssignmentReport",
    "CiReport",
    "check_assignment",
    "check_ci_properties",
    "addable_strings",
    "term_machine",
]
