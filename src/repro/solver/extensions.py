"""Extensions sketched in paper Sec. 3.1.2.

The paper notes that RMA "can be readily extended to support additional
operations, such as union or substring indexing ... implemented using
basic operations on nondeterministic finite state automata".  This
module provides the three extensions the paper names or implies:

* **Union in expressions** — ``(e1 | e2) ⊆ c`` distributes into
  ``e1 ⊆ c ∧ e2 ⊆ c``; :func:`expand_unions` performs the rewriting so
  the core grammar (Fig. 2) never has to know about union.
* **Length restriction** (the paper's substring-indexing example:
  "restrict the language of a variable to strings of a specified
  length n, to model length checks in code") — :func:`length_between`
  builds the constant ``Σ^{lo..hi}`` to intersect against.
* **Universal prefix/suffix contexts** — the *sound* semantics for a
  constant operand in a concatenation: ``prefix_context(c, t)`` is
  ``{w | ∀u ∈ c: u·w ∈ t}``, computed with the universal quotients of
  :mod:`repro.automata.ops` (see DESIGN.md for how this differs from
  the paper's slice-based treatment of constant operands).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union as TypingUnion

from ..automata import ops
from ..automata.alphabet import BYTE_ALPHABET, Alphabet
from ..automata.nfa import Nfa
from ..constraints.terms import ConcatTerm, Const, Problem, Subset, Term, Var

__all__ = [
    "UnionTerm",
    "ExtendedSubset",
    "expand_unions",
    "length_exactly",
    "length_between",
    "prefix_context",
    "suffix_context",
]


@dataclass(frozen=True)
class UnionTerm:
    """A union of terms — extension syntax, rewritten away before solving."""

    parts: Tuple["ExtTerm", ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("UnionTerm requires at least two parts")

    def __str__(self) -> str:
        return "(" + " | ".join(str(p) for p in self.parts) + ")"


ExtTerm = TypingUnion[Term, UnionTerm, "ExtConcat"]


@dataclass(frozen=True)
class ExtConcat:
    """Concatenation over extended terms (may contain unions)."""

    parts: Tuple[ExtTerm, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("ExtConcat requires at least two operands")

    def __str__(self) -> str:
        return " . ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class ExtendedSubset:
    """A subset constraint whose left side may use unions."""

    lhs: ExtTerm
    rhs: Const


def expand_unions(
    constraints: list[ExtendedSubset], alphabet: Alphabet = BYTE_ALPHABET
) -> Problem:
    """Distribute unions and produce a core-grammar :class:`Problem`.

    ``(e1 | e2) ⊆ c`` holds iff both ``e1 ⊆ c`` and ``e2 ⊆ c`` hold, and
    concatenation distributes over union, so every extended constraint
    expands into the cross product of its union branches.
    """
    core: list[Subset] = []
    for constraint in constraints:
        for term in _expand_term(constraint.lhs):
            core.append(Subset(term, constraint.rhs))
    return Problem(core, alphabet=alphabet)


def _expand_term(term: ExtTerm) -> list[Term]:
    if isinstance(term, UnionTerm):
        out: list[Term] = []
        for part in term.parts:
            out.extend(_expand_term(part))
        return out
    if isinstance(term, (ExtConcat, ConcatTerm)):
        # Cross product of each operand's expansions.
        expanded: list[list[Term]] = [[]]
        for part in term.parts:
            options = _expand_term(part)
            expanded = [prefix + [opt] for prefix in expanded for opt in options]
        out = []
        for parts in expanded:
            if len(parts) == 1:
                out.append(parts[0])
            else:
                out.append(ConcatTerm(tuple(parts)))
        return out
    if isinstance(term, (Var, Const)):
        return [term]
    raise TypeError(f"unknown extended term {term!r}")


def length_exactly(
    count: int, alphabet: Alphabet = BYTE_ALPHABET, name: str = ""
) -> Const:
    """The constant ``Σ^count`` — the paper's length-check modelling."""
    return length_between(count, count, alphabet, name)


def length_between(
    lo: int, hi: int, alphabet: Alphabet = BYTE_ALPHABET, name: str = ""
) -> Const:
    """The constant ``Σ^{lo} ∪ ... ∪ Σ^{hi}``."""
    if lo < 0 or hi < lo:
        raise ValueError(f"bad length bounds [{lo}, {hi}]")
    machine = Nfa(alphabet)
    states = machine.add_states(hi + 1)
    for index in range(hi):
        machine.add_transition(states[index], alphabet.universe, states[index + 1])
    machine.starts = {states[0]}
    machine.finals = {states[i] for i in range(lo, hi + 1)}
    label = name or f"len[{lo},{hi}]"
    return Const(label, machine, source=f"Σ^{{{lo},{hi}}}")


def prefix_context(prefix: Const, target: Const, name: str = "") -> Const:
    """``{w | ∀u ∈ prefix: u·w ∈ target}`` as a constant.

    Useful to pre-solve a concatenation with a constant left operand
    under the universal semantics: ``prefix · v ⊆ target`` holds for
    *all* of the prefix exactly when ``v ⊆ prefix_context(...)``.
    """
    machine = ops.left_quotient(prefix.machine, target.machine)
    label = name or f"({prefix.name}\\{target.name})"
    return Const(label, machine, source=label)


def suffix_context(target: Const, suffix: Const, name: str = "") -> Const:
    """``{w | ∀u ∈ suffix: w·u ∈ target}`` as a constant."""
    machine = ops.right_quotient(target.machine, suffix.machine)
    label = name or f"({target.name}/{suffix.name})"
    return Const(label, machine, source=label)
