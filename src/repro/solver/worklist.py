"""The general constraint-solving algorithm (paper Fig. 7).

Solving a dependency graph proceeds in the paper's three stages:

1. *Basic constraints* — variables with only subset constraints (no
   concatenation edges) are resolved by intersecting their inbound
   constants in topological order (``sort_acyclic_nodes`` + ``reduce``);
   this never forks the worklist.
2. *CI-groups* — each connected component of concatenation edges is
   eliminated by the generalized CI procedure (:mod:`repro.solver.gci`),
   which may produce several disjunctive solutions; the first solution
   continues the current work item and the rest are appended to the
   worklist (Fig. 7 lines 11-15).
3. *Termination* — a work item whose groups are all eliminated yields a
   complete assignment.  Following the paper (lines 16-23), an
   assignment that maps a queried variable to ∅ does not count as
   success; if every work item ends that way the instance is reported
   unsatisfiable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Optional

from .. import obs
from ..automata import ops
from ..automata.backend import active_backend, use_backend
from ..automata.dfa import minimize_nfa
from ..automata.equivalence import is_subset
from ..automata.nfa import Nfa
from ..cache import LangCache, active_cache
from ..constraints.depgraph import DepGraph, build_graph
from ..constraints.terms import Problem
from .assignments import Assignment, SolutionSet
from .gci import GciLimits, group_solutions

__all__ = ["solve", "solve_graph"]


def solve(
    problem: Problem,
    query: Optional[list[str]] = None,
    max_solutions: Optional[int] = None,
    limits: Optional[GciLimits] = None,
    only: Optional[list[str]] = None,
) -> SolutionSet:
    """Find the disjunctive satisfying assignments for an RMA instance.

    ``query`` is the paper's node set ``S``: the variables that must be
    non-empty for the result to count as satisfiable (default: all).
    ``max_solutions`` bounds the enumeration; the first solution is
    always found without enumerating the rest (Sec. 3.5's observation).

    ``only`` solves just the part of the dependency graph a client
    analysis cares about (paper Sec. 4: "the possibility of solving
    either part or all of the graph depending on the needs of the
    client analysis"): CI-groups and basic variables that involve none
    of the named variables are skipped entirely, and the returned
    assignments cover only the reachable part.
    """
    graph, _ = build_graph(problem)
    variable_names = [v.name for v in problem.variables()]
    if only is not None:
        unknown = set(only) - {v.name for v in problem.variables()}
        if unknown:
            raise ValueError(f"unknown variables in `only`: {sorted(unknown)}")
        variable_names = [n for n in variable_names if n in set(only)]
    return solve_graph(
        graph,
        variable_names,
        query=query,
        max_solutions=max_solutions,
        limits=limits,
        only=only,
    )


def solve_graph(
    graph: DepGraph,
    variable_names: list[str],
    query: Optional[list[str]] = None,
    max_solutions: Optional[int] = None,
    limits: Optional[GciLimits] = None,
    only: Optional[list[str]] = None,
) -> SolutionSet:
    """Solve a pre-built dependency graph (Fig. 7's entry point).

    When ``limits.cache`` requests a language cache and none is active
    yet, one is activated for the duration of this solve (solver-scoped
    memoization of determinize/minimize/intersect/inclusion work).
    ``limits.backend`` likewise installs the named automata backend for
    the duration of the solve (``None`` keeps whatever is active).
    """
    limits = limits or GciLimits()
    with use_backend(limits.backend):
        if limits.cache is not None and active_cache() is None:
            with LangCache(limits.cache).activate():
                return _solve_graph(
                    graph, variable_names, query, max_solutions, limits, only
                )
        return _solve_graph(
            graph, variable_names, query, max_solutions, limits, only
        )


def _solve_graph(
    graph: DepGraph,
    variable_names: list[str],
    query: Optional[list[str]],
    max_solutions: Optional[int],
    limits: GciLimits,
    only: Optional[list[str]],
) -> SolutionSet:
    query_names = list(query) if query is not None else list(variable_names)
    wanted: Optional[set[str]] = set(only) if only is not None else None

    with obs.span(
        "solve",
        variables=len(variable_names),
        backend=active_backend().name,
        plan=limits.plan,
    ) as solve_span:
        # -- Constant-to-constant constraints are pure checks: a violated
        # one makes the whole system unsatisfiable regardless of variables.
        for edge in graph.subset_edges:
            if edge.target.is_const:
                target = graph.machine(edge.target)
                source = graph.machine(edge.source)
                if not is_subset(target, source):
                    solve_span.set("assignments", 0)
                    return SolutionSet([], query_names)

        # -- Opt-in precheck: run the abstract domains once and prune
        # whatever they prove empty.  Sound relative to the stages
        # below: a basic variable proved empty would intersect to ∅
        # anyway, and a group with a forced-empty node admits no viable
        # bridge combination (see repro.check.domains).
        abstraction = None
        if limits.precheck:
            from ..check.domains import evaluate_graph

            with obs.span("precheck"):
                abstraction = evaluate_graph(graph)

        # -- Stage 1: basic constraints (Fig. 7 lines 3-8).
        base: dict[str, Nfa] = {}
        with obs.span("basic_constraints"):
            for node in graph.var_nodes():
                if graph.in_some_concat(node):
                    continue
                if wanted is not None and node.name not in wanted:
                    continue
                if abstraction is not None and abstraction.proved_empty(node):
                    # The inbound intersection is provably ∅; skip the
                    # products and assign the canonical empty machine
                    # (language-equal to what the intersection yields).
                    obs.increment_metric("check.pruned_nodes")
                    base[node.name] = Nfa.never(graph.alphabet)
                    continue
                machine = Nfa.universal(graph.alphabet)
                for const_node in graph.inbound_subsets(node):
                    machine = ops.intersect(
                        machine, graph.machine(const_node)
                    ).trim()
                if limits.minimize_leaves and not machine.is_empty():
                    machine = minimize_nfa(machine)
                base[node.name] = machine

        # -- Stage 2: eliminate CI-groups via the worklist (lines 9-23).
        groups = graph.ci_groups()
        if wanted is not None:
            groups = [
                group
                for group in groups
                if any(node.is_var and node.name in wanted for node in group)
            ]
        solve_span.set("groups", len(groups))

        if groups and obs.active_sinks():
            # Publish the pre-solve cost ceiling (repro.check's sound
            # bound on gci.combinations_total, arithmetic over machine
            # sizes only) so heartbeat consumers can report % complete
            # against it before enumeration begins.  Cyclic groups have
            # no ceiling; skip quietly.
            from ..check.cost import estimate_group

            ceiling = 0
            estimated = 0
            for group in groups:
                try:
                    ceiling += estimate_group(graph, group).estimated_combinations
                    estimated += 1
                except ValueError:
                    continue
            if estimated:
                obs.set_gauge("check.cost_ceiling", ceiling)
                obs.event(
                    "cost_ceiling",
                    estimate=ceiling,
                    groups=len(groups),
                    groups_estimated=estimated,
                )

        if abstraction is not None:
            for group in groups:
                if abstraction.unsat_witness(group) is None:
                    continue
                try:
                    graph.group_temps_in_order(group)
                except ValueError:
                    continue  # cyclic group: let the real path report it
                # The group admits no viable bridge combination, so
                # every work item dies at it: the instance has exactly
                # zero assignments, which is what we return.
                obs.increment_metric("check.proved_unsat")
                obs.increment_metric(
                    "check.pruned_nodes",
                    sum(1 for node in group if node.is_var),
                )
                solve_span.set("assignments", 0)
                return SolutionSet([], query_names)

        # With workers configured, solve every group up-front on one
        # shared process pool (independent-group scheduling): the
        # groups are disjoint, so the per-item re-enumeration below
        # would recompute identical solution lists anyway.  The BFS
        # then replays the cached lists, so ordering, caps, and the
        # resulting SolutionSet are exactly the serial path's.
        from ..parallel import resolve_workers, solve_groups

        # The BFS below consumes at most max(1, max_solutions) solutions
        # per group, so push that bound down into the group enumeration:
        # group_solutions yields exactly the same prefix either way, and
        # the streaming consumer can use the cap to stop enumerating
        # bridge combinations early (see gci._consume).
        group_limits = limits
        if max_solutions is not None:
            per_group = max(1, max_solutions)
            if limits.max_solutions is None or per_group < limits.max_solutions:
                group_limits = replace(limits, max_solutions=per_group)

        workers = resolve_workers(limits.workers)
        cached: Optional[list[list]] = None
        if workers > 0 and groups:
            take = max(1, max_solutions) if max_solutions is not None else None
            cached = solve_groups(graph, groups, group_limits, workers, take)

        assignments: list[Assignment] = []
        queue: deque[tuple[int, dict[str, Nfa]]] = deque([(0, base)])
        iterations = 0
        while queue:
            group_index, partial = queue.popleft()
            iterations += 1
            if group_index == len(groups):
                assignments.append(Assignment(partial))
                if max_solutions is not None and len(assignments) >= max_solutions:
                    break
                continue
            with obs.span(
                "worklist_iteration", group_index=group_index
            ) as iter_span:
                group = groups[group_index]
                produced = 0
                source = (
                    cached[group_index]
                    if cached is not None
                    else group_solutions(graph, group, group_limits)
                )
                for solution in source:
                    mapping = dict(partial)
                    for node, machine in solution.items():
                        mapping[node.name] = machine
                    queue.append((group_index + 1, mapping))
                    produced += 1
                    if max_solutions is not None and produced >= max_solutions:
                        break
                iter_span.set("solutions", produced)
            # A group with no solutions kills this work item (the paper's
            # "no assignments found" branch for the current graph).

        solve_span.set("iterations", iterations)
        solve_span.set("assignments", len(assignments))
        return SolutionSet(assignments, query_names)
