"""Executable checking of the paper's correctness properties.

The paper ships a Coq proof of three properties of ``concat_intersect``
(Sec. 3.3): *Regular*, *Satisfying*, and *All Solutions*.  We cannot
re-run Coq here, so this module makes the same statements executable —
they are decided exactly with the automata-inclusion oracle and used
throughout the test suite (including the hypothesis property tests).

For full RMA assignments the module additionally decides *Maximal*
(Def. 3.1, condition 2) — exactly when every variable occurs at most
once per constraint, and by sampling otherwise (a variable occurring
twice makes the addable-string set potentially non-regular).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..automata import ops
from ..automata.analysis import enumerate_strings
from ..automata.dfa import complement
from ..automata.equivalence import counterexample, is_subset
from ..automata.nfa import Nfa
from ..constraints.terms import ConcatTerm, Const, Problem, Term, Var
from .assignments import Assignment
from .ci import CiSolution

__all__ = [
    "term_machine",
    "CiReport",
    "check_ci_properties",
    "AssignmentReport",
    "check_assignment",
    "addable_strings",
]


def term_machine(term: Term, assignment: Assignment) -> Nfa:
    """The machine for ``⟦term⟧_A`` — substitute and evaluate."""
    if isinstance(term, Var):
        return assignment.machine(term.name)
    if isinstance(term, Const):
        return term.machine
    if isinstance(term, ConcatTerm):
        machines = [term_machine(part, assignment) for part in term.parts]
        out = machines[0]
        for machine in machines[1:]:
            out = ops.concat(out, machine)
        return out
    raise TypeError(f"unknown term {term!r}")


@dataclass
class CiReport:
    """Outcome of checking the three Sec. 3.3 properties for a CI run."""

    satisfying: bool = True
    all_solutions: bool = True
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.satisfying and self.all_solutions


def check_ci_properties(
    c1: Nfa, c2: Nfa, c3: Nfa, solutions: list[CiSolution]
) -> CiReport:
    """Decide Satisfying and All-Solutions for a ``concat_intersect`` run.

    (*Regular* holds by construction: solutions are NFAs.)

    * Satisfying: every ``(lhs, rhs)`` has ``lhs ⊆ c1``, ``rhs ⊆ c2``
      and ``lhs · rhs ⊆ c3``.
    * All Solutions: every ``w ∈ (c1 · c2) ∩ c3`` lies in some
      solution's ``lhs · rhs`` — checked exactly as the inclusion
      ``(c1·c2) ∩ c3  ⊆  ⋃ᵢ lhsᵢ·rhsᵢ``.
    """
    report = CiReport()
    for index, solution in enumerate(solutions):
        for name, subset, superset in (
            ("lhs ⊆ c1", solution.lhs, c1),
            ("rhs ⊆ c2", solution.rhs, c2),
            ("lhs·rhs ⊆ c3", ops.concat(solution.lhs, solution.rhs), c3),
        ):
            witness = counterexample(subset, superset)
            if witness is not None:
                report.satisfying = False
                report.violations.append(
                    f"solution {index}: {name} fails on {witness!r}"
                )

    everything = ops.intersect(ops.concat(c1, c2), c3)
    if solutions:
        covered = ops.concat(solutions[0].lhs, solutions[0].rhs)
        for solution in solutions[1:]:
            covered = ops.union(covered, ops.concat(solution.lhs, solution.rhs))
    else:
        covered = Nfa.never(c1.alphabet)
    witness = counterexample(everything, covered)
    if witness is not None:
        report.all_solutions = False
        report.violations.append(f"uncovered string {witness!r}")
    return report


@dataclass
class AssignmentReport:
    """Outcome of checking one RMA assignment against its problem."""

    satisfying: bool = True
    #: True / False when decided exactly; None when only sampled.
    maximal: Optional[bool] = True
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.satisfying and self.maximal is not False


def check_assignment(
    problem: Problem,
    assignment: Assignment,
    check_maximality: bool = True,
    sample_limit: int = 25,
) -> AssignmentReport:
    """Decide *Satisfying*, and (where possible exactly) *Maximal*."""
    report = AssignmentReport()
    for constraint in problem.constraints:
        machine = term_machine(constraint.lhs, assignment)
        witness = counterexample(machine, constraint.rhs.machine)
        if witness is not None:
            report.satisfying = False
            report.violations.append(f"{constraint}: violated by {witness!r}")
    if not report.satisfying or not check_maximality:
        report.maximal = None if not check_maximality else report.maximal
        return report

    for var in problem.variables():
        gap, exact = addable_strings(problem, assignment, var.name)
        if exact:
            if not gap.is_empty():
                report.maximal = False
                sample = next(enumerate_strings(gap, limit=1), None)
                report.violations.append(
                    f"{var.name} extendable, e.g. by {sample!r}"
                )
        else:
            # Multi-occurrence variable: sample candidate extensions
            # and test them by direct substitution.
            found = _sampled_extension(
                problem, assignment, var.name, gap, sample_limit
            )
            if found is not None:
                report.maximal = False
                report.violations.append(
                    f"{var.name} extendable, e.g. by {found!r}"
                )
            elif report.maximal is True and not gap.is_empty():
                report.maximal = None  # only sampled; can't certify
    return report


def addable_strings(
    problem: Problem, assignment: Assignment, name: str
) -> tuple[Nfa, bool]:
    """Candidate strings that might extend variable ``name``.

    Returns ``(machine, exact)``.  When the variable occurs at most
    once in each constraint, the machine is *exactly* the set of
    strings ``w`` such that ``A[name] ∪ {w}`` still satisfies every
    constraint (so maximality ⇔ the machine is empty: single-string
    extensions are the worst case because Satisfying is antitone in
    each variable).  With repeated occurrences the machine is an
    over-approximation (the choice combinations where ``w`` fills
    several holes at once are not constrained), and ``exact`` is False.
    """
    alphabet = problem.alphabet
    current = assignment.machine(name)
    admissible = complement(current)  # start from "not already present"
    exact = True
    for constraint in problem.constraints:
        leaf_seq = _flatten(constraint.lhs)
        positions = [
            idx
            for idx, leaf in enumerate(leaf_seq)
            if isinstance(leaf, Var) and leaf.name == name
        ]
        if len(positions) > 1:
            exact = False
        for position in positions:
            left = _context_machine(leaf_seq[:position], assignment, alphabet)
            right = _context_machine(leaf_seq[position + 1 :], assignment, alphabet)
            allowed = ops.left_quotient(
                left, ops.right_quotient(constraint.rhs.machine, right)
            )
            admissible = ops.intersect(admissible, allowed).trim()
    return admissible, exact


def _sampled_extension(
    problem: Problem,
    assignment: Assignment,
    name: str,
    candidates: Nfa,
    sample_limit: int,
) -> Optional[str]:
    """Try concrete candidate strings; return one that truly extends."""
    current = assignment.machine(name)
    for text in enumerate_strings(candidates, limit=sample_limit, max_length=24):
        extended = ops.union(current, Nfa.literal(text, problem.alphabet))
        trial_machines = {
            var: assignment.machine(var) for var in assignment.variables()
        }
        trial_machines[name] = extended
        trial = Assignment(trial_machines)
        if all(
            is_subset(term_machine(c.lhs, trial), c.rhs.machine)
            for c in problem.constraints
        ):
            return text
    return None


def _flatten(term: Term) -> list[Term]:
    if isinstance(term, ConcatTerm):
        out: list[Term] = []
        for part in term.parts:
            out.extend(_flatten(part))
        return out
    return [term]


def _context_machine(parts: list[Term], assignment: Assignment, alphabet) -> Nfa:
    if not parts:
        return Nfa.epsilon_only(alphabet)
    machines = [term_machine(part, assignment) for part in parts]
    out = machines[0]
    for machine in machines[1:]:
        out = ops.concat(out, machine)
    return out
