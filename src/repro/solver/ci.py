"""The Concatenation-Intersection algorithm (paper Fig. 3).

Given three regular languages ``c1, c2, c3``, the CI problem asks for
all maximal assignments to ``v1, v2`` such that::

    v1 ⊆ c1      v2 ⊆ c2      v1 · v2 ⊆ c3

The construction: build ``M4 = M1 · M2`` with a *tagged* bridging
ε-transition, then ``M5 = M4 ∩ M3`` by cross product.  Every image of
the bridge inside ``M5`` (one per ``(Qlhs × Qrhs)`` crossing in the
paper's terms) yields one disjunctive solution: ``v1`` is ``M5`` with
the image's source as the only final state (``induce_from_final``) and
``v2`` is ``M5`` with the image's target as the only start state
(``induce_from_start``).  Pairs where either side is empty are
rejected, exactly as in the paper.
"""

from __future__ import annotations

from .. import obs
from ..automata import ops
from ..automata.equivalence import equivalent
from ..automata.nfa import BridgeTag, Nfa

__all__ = ["concat_intersect", "CiSolution"]


class CiSolution:
    """One disjunctive CI solution ``[v1 ↦ lhs, v2 ↦ rhs]``.

    ``crossing`` records the bridge image (source and target state of
    the chosen ε-transition in ``M5``) — useful for debugging and for
    the proof-property tests.
    """

    def __init__(self, lhs: Nfa, rhs: Nfa, crossing: tuple[int, int]):
        self.lhs = lhs
        self.rhs = rhs
        self.crossing = crossing

    def __iter__(self):
        return iter((self.lhs, self.rhs))

    def __repr__(self) -> str:
        return f"<CiSolution crossing={self.crossing}>"


def concat_intersect(
    c1: Nfa, c2: Nfa, c3: Nfa, dedupe: bool = False, maximize: bool = False
) -> list[CiSolution]:
    """Solve the CI instance ``(c1, c2, c3)``; returns all solutions.

    With ``dedupe=True``, solutions whose two languages are pairwise
    equivalent to an earlier solution's are dropped (the paper
    enumerates per ε-transition, which can repeat languages).

    With ``maximize=True``, each per-transition slice pair is closed
    under the Galois maximization ``rhs' = c2 ∩ LQ(lhs, c3)`` followed
    by ``lhs' = c1 ∩ RQ(c3, rhs')`` (universal quotients), which makes
    every returned pair maximal in the sense of Def. 3.1.  The plain
    per-transition output matches Fig. 3 as written; see the module
    docs of :mod:`repro.solver.gci` for why the two can differ.
    """
    tag = BridgeTag("ci")
    with obs.span(
        "ci",
        c1_states=c1.num_states,
        c2_states=c2.num_states,
        c3_states=c3.num_states,
    ) as sp:
        # ε-eliminating the inputs keeps bridge images one per genuinely
        # distinct crossing state (cf. gci module docs).
        m1 = ops.eliminate_epsilon(c1).normalized()
        m2 = ops.eliminate_epsilon(c2).normalized()
        m3 = ops.eliminate_epsilon(c3)
        m4 = ops.concat(m1, m2, tag)  # Fig. 3 line 6
        m5, _ = ops.product(m4, m3)  # Fig. 3 lines 7-8
        m5 = m5.trim()
        sp.set("product_states", m5.num_states)

        solutions: list[CiSolution] = []
        for src, edge in sorted(
            m5.edges(), key=lambda item: (item[0], item[1].dst)
        ):
            if edge.tag is not tag:
                continue
            lhs = m5.with_final(src).trim()  # induce_from_final(M5, qa)
            rhs = m5.with_start(edge.dst).trim()  # induce_from_start(M5, qb)
            if lhs.is_empty() or rhs.is_empty():
                continue
            if maximize:
                rhs = ops.intersect(c2, ops.left_quotient(lhs, c3)).trim()
                lhs = ops.intersect(c1, ops.right_quotient(c3, rhs)).trim()
            if dedupe and any(
                equivalent(lhs, existing.lhs) and equivalent(rhs, existing.rhs)
                for existing in solutions
            ):
                continue
            solutions.append(CiSolution(lhs, rhs, (src, edge.dst)))
        sp.set("solutions", len(solutions))
        return solutions
