"""Satisfying assignments: the solver's output representation.

An :class:`Assignment` maps variable names to NFAs (the paper's
``A = [v1 ↦ x1, ..., vm ↦ xm]``).  A :class:`SolutionSet` holds the
disjunctive assignments for one problem, in the order the worklist
discovered them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from ..automata.analysis import shortest_string
from ..automata.dfa import minimize_nfa
from ..automata.equivalence import equivalent
from ..automata.nfa import Nfa
from ..regex import nfa_to_regex, simplify, unparse
from ..regex.ast import Regex

if TYPE_CHECKING:
    from ..obs import Collector

__all__ = ["Assignment", "SolutionSet"]


class Assignment:
    """One satisfying assignment of regular languages to variables."""

    def __init__(self, machines: Mapping[str, Nfa]):
        self._machines = dict(machines)

    def variables(self) -> list[str]:
        return sorted(self._machines)

    def machine(self, name: str) -> Nfa:
        """The NFA assigned to variable ``name``."""
        return self._machines[name]

    def __getitem__(self, name: str) -> Nfa:
        return self._machines[name]

    def __contains__(self, name: str) -> bool:
        return name in self._machines

    def items(self) -> Iterator[tuple[str, Nfa]]:
        return iter(sorted(self._machines.items()))

    def is_empty(self, name: str) -> bool:
        """True if the variable was assigned the empty language."""
        return self._machines[name].is_empty()

    def all_nonempty(self, names: Optional[list[str]] = None) -> bool:
        """True if every named variable has a non-empty language.

        Names absent from the assignment are unconstrained (implicitly
        ``Σ*``) and therefore count as non-empty; this matters for
        analyses that query input variables which only reach the
        constraint system through derived values.
        """
        targets = names if names is not None else list(self._machines)
        return all(
            not self.is_empty(name) for name in targets if name in self._machines
        )

    def witness(self, name: str) -> Optional[str]:
        """A shortest concrete string for the variable, or None if empty.

        This is the paper's testcase-generation step: turning the
        satisfying *language* into an actual exploit input.
        """
        return shortest_string(self._machines[name])

    def witnesses(self, name: str, limit: int = 10, max_length: int = 64):
        """Up to ``limit`` concrete strings in shortlex order — several
        distinct testcases from one satisfying language."""
        from ..automata.analysis import enumerate_strings

        return list(
            enumerate_strings(
                self._machines[name], limit=limit, max_length=max_length
            )
        )

    def regex(self, name: str) -> Regex:
        """The assigned language as a simplified regex AST.

        The machine is minimized (determinize + Hopcroft) before state
        elimination: language-preserving, and both the elimination and
        the rendered pattern are much smaller on the raw sliced
        machines the solver produces.
        """
        machine = self._machines[name]
        if not machine.is_empty():
            machine = minimize_nfa(machine)
        return simplify(nfa_to_regex(machine))

    def regex_str(self, name: str) -> str:
        """The assigned language rendered as pattern text."""
        machine = self._machines[name]
        return unparse(self.regex(name), universe=machine.alphabet.universe)

    def same_languages(self, other: "Assignment") -> bool:
        """Language-level equality against another assignment."""
        if set(self._machines) != set(other._machines):
            return False
        return all(
            equivalent(machine, other._machines[name])
            for name, machine in self._machines.items()
        )

    def describe(self) -> str:
        return ", ".join(
            f"{name} ↦ /{self.regex_str(name)}/" for name, _ in self.items()
        )

    def __repr__(self) -> str:
        return f"<Assignment {', '.join(self.variables())}>"


class SolutionSet:
    """The disjunctive satisfying assignments for one RMA instance.

    ``stats`` carries the observability :class:`~repro.obs.Collector`
    (trace tree + metrics) when the solve was run with
    ``collect_stats=True``; None otherwise.
    """

    def __init__(self, assignments: list[Assignment], variables: list[str]):
        self.assignments = assignments
        self.variables = list(variables)
        self.stats: Optional["Collector"] = None

    @property
    def satisfiable(self) -> bool:
        """True iff some assignment gives every variable a non-empty language.

        This is the paper's success criterion (Fig. 7 line 16): an
        assignment that maps a queried variable to ∅ is reported as
        "no assignments found".
        """
        return any(a.all_nonempty(self.variables) for a in self.assignments)

    @property
    def first(self) -> Assignment:
        for assignment in self.assignments:
            if assignment.all_nonempty(self.variables):
                return assignment
        raise ValueError("no satisfying assignment (unsatisfiable instance)")

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    def __bool__(self) -> bool:
        return self.satisfiable

    def nonempty(self) -> list[Assignment]:
        """Assignments where every queried variable is non-empty."""
        return [a for a in self.assignments if a.all_nonempty(self.variables)]

    def describe(self) -> str:
        if not self.assignments:
            return "no assignments found"
        return "\n".join(
            f"A{i + 1}: {a.describe()}" for i, a in enumerate(self.assignments)
        )
