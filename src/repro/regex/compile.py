"""Thompson construction: regex AST → ε-NFA.

Every machine produced here is in the paper's normal form (one start
state, one final state), which the CI construction assumes.
"""

from __future__ import annotations

from ..automata import ops
from ..automata.alphabet import BYTE_ALPHABET, Alphabet
from ..automata.nfa import Nfa
from .ast import Alt, Chars, Concat, Empty, Epsilon, Literal, Regex, Repeat, Star

__all__ = ["to_nfa"]


def to_nfa(regex: Regex, alphabet: Alphabet = BYTE_ALPHABET) -> Nfa:
    """Compile a regex AST into a single-start/single-final ε-NFA."""
    return _compile(regex, alphabet).normalized()


def _compile(regex: Regex, alphabet: Alphabet) -> Nfa:
    if isinstance(regex, Empty):
        return Nfa.never(alphabet)
    if isinstance(regex, Epsilon):
        return Nfa.epsilon_only(alphabet)
    if isinstance(regex, Literal):
        return Nfa.literal(regex.text, alphabet)
    if isinstance(regex, Chars):
        if regex.charset.is_empty():
            return Nfa.never(alphabet)
        return Nfa.char_class(regex.charset, alphabet)
    if isinstance(regex, Concat):
        # Build in-place rather than via ops.concat: a regex-level
        # concatenation is not a solver concatenation, so no bridge
        # tags, and a flat build avoids one ε per juncture.
        machine = _compile(regex.parts[0], alphabet)
        for part in regex.parts[1:]:
            nxt = _compile(part, alphabet)
            mapping = ops.embed(machine, nxt)
            for fin in machine.finals:
                for st in nxt.starts:
                    machine.add_epsilon(fin, mapping[st])
            machine.finals = {mapping[s] for s in nxt.finals}
        return machine
    if isinstance(regex, Alt):
        machine = _compile(regex.branches[0], alphabet)
        for branch in regex.branches[1:]:
            machine = ops.union(machine, _compile(branch, alphabet))
        return machine
    if isinstance(regex, Star):
        return ops.star(_compile(regex.inner, alphabet))
    if isinstance(regex, Repeat):
        return _compile_repeat(regex, alphabet)
    raise TypeError(f"unknown regex node {type(regex).__name__}")


def _compile_repeat(regex: Repeat, alphabet: Alphabet) -> Nfa:
    inner = _compile(regex.inner, alphabet)
    machine = Nfa.epsilon_only(alphabet)

    def append(part: Nfa, optional_tail: bool) -> None:
        """Concatenate ``part`` (optionally skippable) onto ``machine``."""
        nonlocal machine
        mapping = ops.embed(machine, part)
        new_finals = {mapping[s] for s in part.finals}
        for fin in machine.finals:
            for st in part.starts:
                machine.add_epsilon(fin, mapping[st])
        if optional_tail:
            machine.finals = machine.finals | new_finals
        else:
            machine.finals = new_finals

    for _ in range(regex.lo):
        append(inner, optional_tail=False)
    if regex.hi is None:
        append(ops.star(inner), optional_tail=False)
    else:
        for _ in range(regex.hi - regex.lo):
            append(inner, optional_tail=True)
    return machine
