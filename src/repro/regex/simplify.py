"""Algebraic simplification of regex ASTs.

State elimination (:func:`repro.regex.unparse.nfa_to_regex`) tends to
produce redundant shapes like ``(?:a|a)`` or ``aa*``; this pass applies
a fixed set of language-preserving rewrites bottom-up until a fixed
point.  It is purely cosmetic — solver correctness never depends on it.
"""

from __future__ import annotations

from . import ast
from .ast import (
    EPSILON,
    Alt,
    Chars,
    Concat,
    Empty,
    Epsilon,
    Literal,
    Regex,
    Repeat,
    Star,
)

__all__ = ["simplify"]

_MAX_PASSES = 8


def simplify(regex: Regex) -> Regex:
    """Rewrite to a smaller equivalent AST (bounded number of passes)."""
    current = regex
    for _ in range(_MAX_PASSES):
        rewritten = _rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _rewrite(regex: Regex) -> Regex:
    if isinstance(regex, (Empty, Epsilon, Literal, Chars)):
        return regex
    if isinstance(regex, Concat):
        parts = [_rewrite(p) for p in regex.parts]
        return _simplify_concat(parts)
    if isinstance(regex, Alt):
        branches = [_rewrite(b) for b in regex.branches]
        return _simplify_alt(branches)
    if isinstance(regex, Star):
        return _simplify_star(_rewrite(regex.inner))
    if isinstance(regex, Repeat):
        return _simplify_repeat(regex, _rewrite(regex.inner))
    raise TypeError(f"unknown regex node {type(regex).__name__}")


def _body(regex: Regex) -> Regex | None:
    """The repeated body if ``regex`` is ``r*`` or ``r+``, else None."""
    if isinstance(regex, Star):
        return regex.inner
    if isinstance(regex, Repeat) and regex.hi is None and regex.lo <= 1:
        return regex.inner
    return None


def _simplify_concat(parts: list[Regex]) -> Regex:
    out: list[Regex] = []
    for part in parts:
        prev = out[-1] if out else None
        body = _body(part)
        if prev is not None and body is not None:
            # r r*  ->  r+      and      r* r* -> r*
            if prev == body:
                out[-1] = Repeat(body, 1, None)
                continue
            if _body(prev) == body and isinstance(prev, Star):
                lo = 0 if isinstance(part, Star) else 1
                out[-1] = Star(body) if lo == 0 else Repeat(body, 1, None)
                continue
        prev_body = _body(prev) if prev is not None else None
        if prev_body is not None and prev_body == part and isinstance(prev, Star):
            # r* r  ->  r+
            out[-1] = Repeat(part, 1, None)
            continue
        out.append(part)
    return ast.concat(*out)


def _simplify_alt(branches: list[Regex]) -> Regex:
    # Merge single-character branches into one character class.
    merged_class = None
    rest: list[Regex] = []
    has_epsilon = False
    for branch in branches:
        cs = _as_charset(branch)
        if cs is not None:
            merged_class = cs if merged_class is None else merged_class | cs
        elif branch.is_epsilon():
            has_epsilon = True
        else:
            rest.append(branch)
    out: list[Regex] = []
    if merged_class is not None:
        out.append(Chars(merged_class))
    out.extend(rest)
    if has_epsilon:
        # ε | r+  ->  r*  ;  ε | r*  ->  r*  ; otherwise keep ε (as r?).
        for idx, branch in enumerate(out):
            body = _body(branch)
            if body is not None:
                out[idx] = Star(body)
                has_epsilon = False
                break
    if has_epsilon:
        if len(out) == 1:
            return Repeat(out[0], 0, 1)
        out.append(EPSILON)
    return ast.alt(*out)


def _as_charset(regex: Regex):
    if isinstance(regex, Chars):
        return regex.charset
    if isinstance(regex, Literal) and len(regex.text) == 1:
        from ..automata.charset import CharSet

        return CharSet.single(regex.text)
    return None


def _simplify_star(inner: Regex) -> Regex:
    # (r | ε)* -> r* ;  (r+)* -> r* ;  (r*)* -> r*
    body = _body(inner)
    if body is not None:
        return Star(body)
    if isinstance(inner, Alt):
        non_eps = [b for b in inner.branches if not b.is_epsilon()]
        if len(non_eps) < len(inner.branches):
            return _simplify_star(ast.alt(*non_eps))
    if isinstance(inner, Repeat) and inner.lo == 0 and inner.hi == 1:
        return _simplify_star(inner.inner)
    return ast.star(inner)


def _simplify_repeat(original: Repeat, inner: Regex) -> Regex:
    if inner.is_empty_language():
        return EPSILON if original.lo == 0 else ast.EMPTY
    if inner.is_epsilon():
        return EPSILON
    if (original.lo, original.hi) == (1, 1):
        return inner
    if (original.lo, original.hi) == (0, None):
        return _simplify_star(inner)
    if isinstance(inner, Star) and original.hi is None:
        # (r*){n,} = r*
        return inner
    return Repeat(inner, original.lo, original.hi)
