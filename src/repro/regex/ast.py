"""Regular-expression abstract syntax.

The solver's constants arrive either as string literals or as regexes
(the ``preg_match`` patterns of the paper's evaluation).  This AST is
deliberately a *language-denoting* representation: matching semantics
(anchors, laziness) are resolved by the parser and compiler, so every
node here denotes a plain regular language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..automata.charset import CharSet

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Chars",
    "Literal",
    "Concat",
    "Alt",
    "Star",
    "Repeat",
    "EMPTY",
    "EPSILON",
    "concat",
    "alt",
    "star",
]


@dataclass(frozen=True)
class Regex:
    """Base class for regex AST nodes (all immutable and hashable)."""

    def is_empty_language(self) -> bool:
        return isinstance(self, Empty)

    def is_epsilon(self) -> bool:
        return isinstance(self, Epsilon) or (
            isinstance(self, Literal) and not self.text
        )


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language ∅."""


@dataclass(frozen=True)
class Epsilon(Regex):
    """The language containing only the empty string."""


@dataclass(frozen=True)
class Chars(Regex):
    """A single character drawn from a character set (``[a-z]``, ``.``)."""

    charset: CharSet


@dataclass(frozen=True)
class Literal(Regex):
    """A fixed string of characters (a fused run of singletons)."""

    text: str


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation of two or more parts, in order."""

    parts: Tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concat requires at least two parts")


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation (union) of two or more branches."""

    branches: Tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("Alt requires at least two branches")


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure ``inner*``."""

    inner: Regex


@dataclass(frozen=True)
class Repeat(Regex):
    """Bounded repetition ``inner{lo,hi}``; ``hi=None`` means unbounded.

    ``a+`` parses as ``Repeat(a, 1, None)`` and ``a?`` as
    ``Repeat(a, 0, 1)``; keeping the counted form in the AST preserves
    the user's notation for unparse.
    """

    inner: Regex
    lo: int
    hi: Optional[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise ValueError("negative repetition bound")
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"bad repetition bounds {{{self.lo},{self.hi}}}")


EMPTY = Empty()
EPSILON = Epsilon()


def concat(*parts: Regex) -> Regex:
    """Smart concatenation: drops ε, propagates ∅, flattens, fuses literals."""
    flat: list[Regex] = []
    for part in parts:
        if part.is_empty_language():
            return EMPTY
        if part.is_epsilon():
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    fused: list[Regex] = []
    for part in flat:
        prev = fused[-1] if fused else None
        if isinstance(part, Literal) and isinstance(prev, Literal):
            fused[-1] = Literal(prev.text + part.text)
        elif isinstance(part, Chars) and part.charset.cardinality() == 1:
            ch = part.charset.sample()
            if isinstance(prev, Literal):
                fused[-1] = Literal(prev.text + ch)
            else:
                fused.append(Literal(ch))
        else:
            fused.append(part)
    if not fused:
        return EPSILON
    if len(fused) == 1:
        return fused[0]
    return Concat(tuple(fused))


def alt(*branches: Regex) -> Regex:
    """Smart alternation: drops ∅, flattens, deduplicates."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for branch in branches:
        if branch.is_empty_language():
            continue
        parts = branch.branches if isinstance(branch, Alt) else (branch,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(inner: Regex) -> Regex:
    """Smart Kleene star: ∅* = ε* = ε stays ε, (r*)* collapses."""
    if inner.is_empty_language() or inner.is_epsilon():
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, Repeat) and inner.lo == 0 and inner.hi is None:
        return Star(inner.inner)
    return Star(inner)
