"""Rendering regexes back to text, and NFA → regex state elimination.

The solver's satisfying assignments are NFAs; presenting them to a
human (the paper prints languages like ``Σ*'Σ*(0|...|9)``) needs the
reverse direction of the compiler.  :func:`nfa_to_regex` implements the
classic GNFA state-elimination construction with a low-degree-first
elimination order and relies on the AST smart constructors to keep the
result readable.
"""

from __future__ import annotations

from typing import Optional

from ..automata.charset import CharSet
from ..automata.nfa import Nfa
from . import ast
from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Chars,
    Concat,
    Empty,
    Epsilon,
    Literal,
    Regex,
    Repeat,
    Star,
)

__all__ = ["unparse", "nfa_to_regex"]

_NEEDS_ESCAPE = set("\\.^$|?*+()[]{}/")


def _escape_char(ch: str) -> str:
    if ch in _NEEDS_ESCAPE:
        return "\\" + ch
    specials = {"\t": "\\t", "\n": "\\n", "\r": "\\r", "\f": "\\f", "\v": "\\v"}
    if ch in specials:
        return specials[ch]
    cp = ord(ch)
    if cp < 0x20 or cp == 0x7F:
        return f"\\x{cp:02x}"
    return ch


def _render_charset(cs: CharSet, universe: Optional[CharSet]) -> str:
    if universe is not None:
        if cs == universe:
            return "."
        negated = universe - cs
        if 0 < negated.cardinality() < cs.cardinality():
            return f"[^{negated.format()}]"
    if cs.cardinality() == 1:
        return _escape_char(cs.sample())
    return f"[{cs.format()}]"


# Precedence levels: alternation < concatenation < repetition < atom.
_ALT, _CONCAT, _REPEAT, _ATOM = range(4)


def unparse(regex: Regex, universe: Optional[CharSet] = None) -> str:
    """Render an AST as pattern text that reparses to the same language.

    ``universe`` (when given) enables the ``.`` and ``[^...]``
    abbreviations relative to that alphabet.
    """
    return _render(regex, universe)[0]


def _render(regex: Regex, universe: Optional[CharSet]) -> tuple[str, int]:
    """Returns (text, precedence-level of the top construct)."""
    if isinstance(regex, Empty):
        # No standard syntax for the empty language; a never-matching
        # class is the conventional spelling.
        return "[^\\x00-\\x{10ffff}]", _ATOM
    if isinstance(regex, Epsilon):
        return "", _CONCAT
    if isinstance(regex, Literal):
        if not regex.text:
            return "", _CONCAT
        text = "".join(_escape_char(ch) for ch in regex.text)
        return text, _ATOM if len(regex.text) == 1 else _CONCAT
    if isinstance(regex, Chars):
        return _render_charset(regex.charset, universe), _ATOM
    if isinstance(regex, Concat):
        parts = [_bracket(p, _CONCAT, universe) for p in regex.parts]
        return "".join(parts), _CONCAT
    if isinstance(regex, Alt):
        parts = [_bracket(b, _ALT, universe) for b in regex.branches]
        return "|".join(parts), _ALT
    if isinstance(regex, Star):
        return _bracket(regex.inner, _REPEAT, universe) + "*", _REPEAT
    if isinstance(regex, Repeat):
        body = _bracket(regex.inner, _REPEAT, universe)
        if (regex.lo, regex.hi) == (1, None):
            return body + "+", _REPEAT
        if (regex.lo, regex.hi) == (0, 1):
            return body + "?", _REPEAT
        if (regex.lo, regex.hi) == (0, None):
            return body + "*", _REPEAT
        if regex.hi is None:
            return body + f"{{{regex.lo},}}", _REPEAT
        if regex.hi == regex.lo:
            return body + f"{{{regex.lo}}}", _REPEAT
        return body + f"{{{regex.lo},{regex.hi}}}", _REPEAT
    raise TypeError(f"unknown regex node {type(regex).__name__}")


def _bracket(regex: Regex, context: int, universe: Optional[CharSet]) -> str:
    text, level = _render(regex, universe)
    if level < max(context, _CONCAT) or (context >= _REPEAT and level < _ATOM):
        return f"(?:{text})"
    # An empty rendering inside a concatenation would vanish silently,
    # which is fine (it denotes ε).
    return text


def nfa_to_regex(nfa: Nfa) -> Regex:
    """State-elimination conversion of an NFA to a regex AST.

    Produces a regex denoting exactly ``L(nfa)``.  The machine is
    trimmed first; elimination order is lowest in×out degree first,
    which keeps intermediate labels small in practice.
    """
    trimmed = nfa.trim()
    if trimmed.is_empty():
        return EMPTY

    # GNFA edge labels, collapsing parallel edges through alt().
    labels: dict[tuple[int, int], Regex] = {}

    def add_label(src: int, dst: int, regex: Regex) -> None:
        if regex.is_empty_language():
            return
        key = (src, dst)
        if key in labels:
            labels[key] = ast.alt(labels[key], regex)
        else:
            labels[key] = regex

    live = trimmed.live_states()
    for src, edge in trimmed.edges():
        if src not in live or edge.dst not in live:
            continue
        if edge.label is None:
            add_label(src, edge.dst, EPSILON)
        elif edge.label.cardinality() == 1:
            add_label(src, edge.dst, Literal(edge.label.sample()))
        else:
            add_label(src, edge.dst, Chars(edge.label))

    start = -1
    final = -2
    for st in trimmed.starts:
        if st in live:
            add_label(start, st, EPSILON)
    for fin in trimmed.finals:
        if fin in live:
            add_label(fin, final, EPSILON)

    remaining = set(live)
    while remaining:
        state = min(
            remaining,
            key=lambda s: (
                sum(1 for (a, b) in labels if b == s and a != s)
                * sum(1 for (a, b) in labels if a == s and b != s)
            ),
        )
        remaining.remove(state)
        self_loop = labels.pop((state, state), None)
        loop_regex = ast.star(self_loop) if self_loop is not None else EPSILON
        incoming = [(a, r) for (a, b), r in labels.items() if b == state]
        outgoing = [(b, r) for (a, b), r in labels.items() if a == state]
        for (a, _) in incoming:
            labels.pop((a, state))
        for (b, _) in outgoing:
            labels.pop((state, b))
        for a, rin in incoming:
            for b, rout in outgoing:
                add_label(a, b, ast.concat(rin, loop_regex, rout))

    return labels.get((start, final), EMPTY)
