"""Regex front end: parsing, compilation to NFAs, and pretty-printing."""

from .ast import (
    EMPTY,
    EPSILON,
    Alt,
    Chars,
    Concat,
    Empty,
    Epsilon,
    Literal,
    Regex,
    Repeat,
    Star,
    alt,
    concat,
    star,
)
from .compile import to_nfa
from .parser import MatchSpec, RegexSyntaxError, parse, parse_exact, preg_pattern
from .simplify import simplify
from .unparse import nfa_to_regex, unparse

__all__ = [
    "Regex",
    "Empty",
    "Epsilon",
    "Chars",
    "Literal",
    "Concat",
    "Alt",
    "Star",
    "Repeat",
    "EMPTY",
    "EPSILON",
    "concat",
    "alt",
    "star",
    "parse",
    "parse_exact",
    "preg_pattern",
    "MatchSpec",
    "RegexSyntaxError",
    "to_nfa",
    "unparse",
    "nfa_to_regex",
    "simplify",
]
