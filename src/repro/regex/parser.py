"""A recursive-descent parser for a PCRE-style regex subset.

Supported syntax — the subset exercised by the paper's evaluation
(``preg_match`` filters such as ``/[\\d]+$/``) plus the usual basics:

* literals, ``.``, alternation ``|``, grouping ``(...)`` and ``(?:...)``
* character classes ``[a-z0-9_]`` and negated classes ``[^...]``
* escapes ``\\d \\D \\w \\W \\s \\S \\t \\n \\r \\f \\v \\xHH`` and
  escaped punctuation
* quantifiers ``* + ? {m} {m,} {m,n}`` with an ignored laziness suffix
* anchors ``^`` and ``$`` at the boundaries of top-level branches

Anchors are *matching* syntax, not language syntax, so :func:`parse`
returns a :class:`MatchSpec` that records per-branch anchoring; the
two language views (`full_match` / `search`) pad with ``Σ*`` exactly
where anchors are absent — the distinction the paper's motivating
example hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..automata.alphabet import BYTE_ALPHABET, Alphabet
from ..automata.charset import CharSet
from . import ast
from .ast import EPSILON, Chars, Literal, Regex

__all__ = ["RegexSyntaxError", "MatchSpec", "parse", "parse_exact", "preg_pattern"]


class RegexSyntaxError(ValueError):
    """A syntax error, carrying the offending position in the pattern."""

    def __init__(self, pattern: str, pos: int, message: str):
        self.pattern = pattern
        self.pos = pos
        super().__init__(f"{message} at position {pos} in /{pattern}/")


@dataclass(frozen=True)
class MatchSpec:
    """A parsed pattern: per-branch ``(start_anchored, end_anchored, core)``."""

    pattern: str
    branches: Tuple[Tuple[bool, bool, Regex], ...]
    alphabet: Alphabet

    def full_match(self) -> Regex:
        """Language of strings the pattern matches *in its entirety*.

        Anchors are vacuous for a full match, so they are ignored.
        """
        return ast.alt(*(core for _, _, core in self.branches))

    def search(self) -> Regex:
        """Language of strings *containing* a match (``preg_match`` truth).

        A branch without a ``^`` may start anywhere, so it is padded
        with ``Σ*`` on the left; likewise ``$`` and the right.  This is
        exactly why ``/[\\d]+$/`` in the paper admits ``' OR 1=1 --9``.
        """
        sigma_star = ast.star(Chars(self.alphabet.universe))
        padded = []
        for start_anchored, end_anchored, core in self.branches:
            left = EPSILON if start_anchored else sigma_star
            right = EPSILON if end_anchored else sigma_star
            padded.append(ast.concat(left, core, right))
        return ast.alt(*padded)


# Sentinel "characters" used only inside the parser.
_CARET = object()
_DOLLAR = object()


class _Parser:
    def __init__(self, pattern: str, alphabet: Alphabet):
        self.pattern = pattern
        self.alphabet = alphabet
        self.pos = 0

    # -- character stream ------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def take(self) -> str:
        ch = self.peek()
        if ch is None:
            raise RegexSyntaxError(self.pattern, self.pos, "unexpected end of pattern")
        self.pos += 1
        return ch

    def expect(self, ch: str) -> None:
        if self.peek() != ch:
            raise RegexSyntaxError(self.pattern, self.pos, f"expected {ch!r}")
        self.pos += 1

    def error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(self.pattern, self.pos, message)

    # -- grammar -----------------------------------------------------------

    def parse_spec(self) -> MatchSpec:
        branches = [self.parse_branch(top_level=True)]
        while self.peek() == "|":
            self.take()
            branches.append(self.parse_branch(top_level=True))
        if self.peek() is not None:
            raise self.error(f"unexpected {self.peek()!r}")
        return MatchSpec(self.pattern, tuple(branches), self.alphabet)

    def parse_alt(self) -> Regex:
        first = self.parse_branch(top_level=False)[2]
        branches = [first]
        while self.peek() == "|":
            self.take()
            branches.append(self.parse_branch(top_level=False)[2])
        return ast.alt(*branches)

    def parse_branch(self, top_level: bool) -> tuple[bool, bool, Regex]:
        """One alternation branch; returns (start_anchored, end_anchored, core)."""
        items: list[Regex] = []
        start_anchored = False
        end_anchored = False
        first = True
        while True:
            ch = self.peek()
            if ch is None or ch in "|)":
                break
            if ch == "^":
                if not top_level or not first:
                    raise self.error("'^' is only supported at the start of a branch")
                self.take()
                start_anchored = True
                first = False
                continue
            if ch == "$":
                self.take()
                if self.peek() not in (None, "|", ")"):
                    raise self.error("'$' is only supported at the end of a branch")
                if not top_level:
                    raise self.error("'$' inside a group is not supported")
                end_anchored = True
                break
            items.append(self.parse_repeat())
            first = False
        core = ast.concat(*items) if items else EPSILON
        return start_anchored, end_anchored, core

    def parse_repeat(self) -> Regex:
        atom = self.parse_atom()
        while True:
            ch = self.peek()
            if ch == "*":
                self.take()
                atom = ast.star(atom)
            elif ch == "+":
                self.take()
                atom = ast.Repeat(atom, 1, None)
            elif ch == "?":
                self.take()
                atom = ast.Repeat(atom, 0, 1)
            elif ch == "{":
                saved = self.pos
                bounds = self.try_parse_bounds()
                if bounds is None:
                    self.pos = saved
                    break
                lo, hi = bounds
                atom = ast.Repeat(atom, lo, hi)
            else:
                break
            if self.peek() == "?":
                # Lazy quantifier: same language, ignore.
                self.take()
        return atom

    def try_parse_bounds(self) -> Optional[tuple[int, Optional[int]]]:
        """Parse ``{m}``/``{m,}``/``{m,n}``; None if it is a literal brace."""
        self.expect("{")
        digits = self.take_digits()
        if digits is None:
            return None
        lo = int(digits)
        ch = self.peek()
        if ch == "}":
            self.take()
            return lo, lo
        if ch != ",":
            return None
        self.take()
        if self.peek() == "}":
            self.take()
            return lo, None
        digits = self.take_digits()
        if digits is None or self.peek() != "}":
            return None
        self.take()
        hi = int(digits)
        if hi < lo:
            raise self.error(f"repetition bounds out of order {{{lo},{hi}}}")
        return lo, hi

    def take_digits(self) -> Optional[str]:
        out = []
        while self.peek() is not None and self.peek().isdigit():
            out.append(self.take())
        return "".join(out) if out else None

    def parse_atom(self) -> Regex:
        ch = self.take()
        if ch == "(":
            if self.peek() == "?":
                self.take()
                nxt = self.peek()
                if nxt == ":":
                    self.take()
                else:
                    raise self.error(f"unsupported group modifier (?{nxt}")
            inner = self.parse_alt() if self.peek() != ")" else EPSILON
            self.expect(")")
            return inner
        if ch == "[":
            return Chars(self.parse_char_class())
        if ch == ".":
            return Chars(self.alphabet.universe)
        if ch == "\\":
            return self.parse_escape(in_class=False)
        if ch in "*+?":
            raise RegexSyntaxError(
                self.pattern, self.pos - 1, f"quantifier {ch!r} with nothing to repeat"
            )
        if ch in ")":
            raise RegexSyntaxError(self.pattern, self.pos - 1, "unmatched ')'")
        return Literal(ch)

    def parse_escape(self, in_class: bool) -> Regex:
        start = self.pos - 1
        ch = self.take()
        classes = {
            "d": self.alphabet.digit,
            "D": self.alphabet.negate(self.alphabet.digit),
            "w": self.alphabet.word,
            "W": self.alphabet.negate(self.alphabet.word),
            "s": self.alphabet.space,
            "S": self.alphabet.negate(self.alphabet.space),
        }
        if ch in classes:
            return Chars(classes[ch])
        simple = {"t": "\t", "n": "\n", "r": "\r", "f": "\f", "v": "\v", "0": "\0"}
        if ch in simple:
            return Literal(simple[ch])
        if ch == "x":
            if self.peek() == "{":
                # PCRE braced form \x{HHHH..} (any number of digits).
                self.take()
                digits = []
                while self.peek() not in (None, "}"):
                    digits.append(self.take())
                self.expect("}")
                hex_digits = "".join(digits)
            else:
                hex_digits = self.take() + self.take()
            try:
                return Literal(chr(int(hex_digits, 16)))
            except (ValueError, OverflowError):
                raise RegexSyntaxError(self.pattern, start, f"bad \\x{hex_digits}")
        if ch == "u":
            hex_digits = "".join(self.take() for _ in range(4))
            try:
                return Literal(chr(int(hex_digits, 16)))
            except ValueError:
                raise RegexSyntaxError(self.pattern, start, f"bad \\u{hex_digits}")
        if ch.isalnum():
            raise RegexSyntaxError(self.pattern, start, f"unsupported escape \\{ch}")
        return Literal(ch)

    def parse_char_class(self) -> CharSet:
        negated = False
        if self.peek() == "^":
            self.take()
            negated = True
        members = CharSet.empty()
        first = True
        while True:
            ch = self.peek()
            if ch is None:
                raise self.error("unterminated character class")
            if ch == "]" and not first:
                self.take()
                break
            members = members | self.parse_class_item()
            first = False
        if negated:
            return self.alphabet.negate(members)
        return members & self.alphabet.universe

    def parse_class_item(self) -> CharSet:
        lo_set = self.parse_class_char()
        if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[
            self.pos + 1
        ] != "]":
            if lo_set is None or lo_set.cardinality() != 1:
                raise self.error("character class range bound must be a single char")
            self.take()
            hi_set = self.parse_class_char()
            if hi_set is None or hi_set.cardinality() != 1:
                raise self.error("character class range bound must be a single char")
            lo = lo_set.min_char()
            hi = hi_set.min_char()
            if hi < lo:
                raise self.error("character class range out of order")
            return CharSet.range(lo, hi)
        return lo_set

    def parse_class_char(self) -> CharSet:
        ch = self.take()
        if ch == "\\":
            item = self.parse_escape(in_class=True)
            if isinstance(item, Chars):
                return item.charset
            assert isinstance(item, Literal) and len(item.text) == 1
            return CharSet.single(item.text)
        return CharSet.single(ch)


def parse(pattern: str, alphabet: Alphabet = BYTE_ALPHABET) -> MatchSpec:
    """Parse a pattern into a :class:`MatchSpec` (anchors allowed)."""
    return _Parser(pattern, alphabet).parse_spec()


def parse_exact(pattern: str, alphabet: Alphabet = BYTE_ALPHABET) -> Regex:
    """Parse a pattern that denotes a language directly (no anchors).

    This is the entry point for writing constants in the constraint DSL,
    where ``Σ*`` padding would be surprising; anchors are rejected.
    """
    spec = parse(pattern, alphabet)
    for start_anchored, end_anchored, _ in spec.branches:
        if start_anchored or end_anchored:
            raise RegexSyntaxError(
                pattern, 0, "anchors have no meaning in a language-level regex"
            )
    return spec.full_match()


def preg_pattern(delimited: str, alphabet: Alphabet = BYTE_ALPHABET) -> MatchSpec:
    """Parse a PHP ``preg_match`` pattern including its delimiters.

    ``preg_pattern("/[\\d]+$/")`` strips the slashes (any matching
    punctuation pair is accepted, per PHP) and parses the body.
    Trailing PCRE flags are rejected except the no-op ``s`` (dot
    already matches everything in our semantics).
    """
    if len(delimited) < 2:
        raise RegexSyntaxError(delimited, 0, "pattern too short to be delimited")
    open_delim = delimited[0]
    close_delim = {"(": ")", "[": "]", "{": "}", "<": ">"}.get(open_delim, open_delim)
    end = delimited.rfind(close_delim)
    if end <= 0:
        raise RegexSyntaxError(delimited, 0, "missing closing delimiter")
    flags = delimited[end + 1 :]
    for flag in flags:
        if flag not in "s":
            raise RegexSyntaxError(delimited, end + 1, f"unsupported flag {flag!r}")
    return parse(delimited[1:end], alphabet)
