"""AST for the mini-PHP subset the evaluation analyses.

The paper's prototype consumes PHP web applications; we reproduce the
fragment its constraint generation actually exercises (cf. Fig. 1):
assignments, string concatenation and interpolation, ``preg_match``
filters, equality checks, branches, ``exit``, and sink calls such as
``query(...)``.

Every node carries the 1-based source line for diagnostics and for
mapping vulnerabilities back to code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    # expressions
    "Expr",
    "StringLit",
    "VarRef",
    "InputRef",
    "Interp",
    "ConcatExpr",
    "Call",
    "BoolLit",
    "Compare",
    "Not",
    "BoolOp",
    "PregMatch",
    "Ternary",
    # statements
    "Stmt",
    "Assign",
    "If",
    "While",
    "ExprStmt",
    "Exit",
    "Echo",
    "Block",
    "Program",
]


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""

    line: int


@dataclass(frozen=True)
class StringLit(Expr):
    """A string literal (interpolation already desugared away)."""

    value: str


@dataclass(frozen=True)
class VarRef(Expr):
    """``$name``."""

    name: str


@dataclass(frozen=True)
class InputRef(Expr):
    """``$_GET['key']`` or ``$_POST['key']`` — an untrusted input."""

    source: str  # "GET" | "POST" | "REQUEST" | "COOKIE"
    key: str

    @property
    def input_name(self) -> str:
        """The solver-variable name for this input."""
        return f"{self.source.lower()}_{self.key}"


@dataclass(frozen=True)
class Interp(Expr):
    """A double-quoted string with ``$var`` interpolation, pre-desugar.

    The parser emits :class:`ConcatExpr` directly; this node only
    appears if a client builds ASTs by hand and wants the sugar.
    """

    parts: Tuple[Expr, ...]


@dataclass(frozen=True)
class ConcatExpr(Expr):
    """String concatenation (PHP's ``.`` operator), flattened."""

    parts: Tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("ConcatExpr requires at least two parts")


@dataclass(frozen=True)
class Call(Expr):
    """A function call; ``query(...)`` is the canonical sink."""

    name: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Compare(Expr):
    """String equality / inequality: ``==``, ``===``, ``!=``, ``!==``."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class BoolOp(Expr):
    """``&&`` / ``||`` with PHP's short-circuit semantics."""

    op: str  # "and" | "or"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class PregMatch(Expr):
    """``preg_match('/re/', subject)`` — the paper's filter primitive."""

    pattern: str  # delimited pattern text, e.g. "/[\\d]+$/"
    subject: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """``cond ? then : otherwise``.

    Assignments of ternaries are lowered to if/else during CFG
    construction, keeping symbolic execution path-sensitive; in other
    positions the value is havocked.
    """

    condition: Expr
    then_value: Expr
    else_value: Expr


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""

    line: int


@dataclass(frozen=True)
class Assign(Stmt):
    """``$target = value;`` (or ``.=`` desugared by the parser)."""

    target: str
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: "Block"
    else_body: Optional["Block"] = None


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) { ... }``.

    Lowered by bounded unrolling during CFG construction: paths taking
    at most ``loop_unroll`` iterations are explored exactly (their
    exploit witnesses are genuine); longer executions are not explored,
    which is the usual under-approximation for testcase generation.
    """

    condition: Expr
    body: "Block"


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """An expression evaluated for effect (typically a call)."""

    expr: Expr


@dataclass(frozen=True)
class Exit(Stmt):
    """``exit;`` / ``die;`` — terminates the path."""


@dataclass(frozen=True)
class Echo(Stmt):
    value: Expr


@dataclass(frozen=True)
class Block(Stmt):
    statements: Tuple[Stmt, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Program:
    """A parsed PHP file."""

    body: Block
    source_name: str = "<script>"
