"""Control-flow graphs for mini-PHP programs.

Fig. 12 of the paper reports ``|FG|``, the number of basic blocks per
analysed file; this module provides the same measurement plus the path
enumeration the symbolic executor uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .ast import (
    Assign,
    Block,
    Echo,
    Exit,
    Expr,
    ExprStmt,
    If,
    Program,
    Stmt,
    Ternary,
    While,
)

__all__ = ["BasicBlock", "Cfg", "build_cfg"]


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of statements.

    A block ends either in a branch (``condition`` set, with
    ``true_successor`` / ``false_successor``), a fall-through edge
    (``true_successor`` only), or nothing (terminal: exit or program
    end).
    """

    block_id: int
    statements: list[Stmt] = field(default_factory=list)
    condition: Optional[Expr] = None
    true_successor: Optional[int] = None
    false_successor: Optional[int] = None

    @property
    def is_terminal(self) -> bool:
        return self.true_successor is None and self.false_successor is None

    def successors(self) -> list[int]:
        out = []
        if self.true_successor is not None:
            out.append(self.true_successor)
        if self.false_successor is not None:
            out.append(self.false_successor)
        return out


class Cfg:
    """A program's control-flow graph."""

    def __init__(self) -> None:
        self.blocks: dict[int, BasicBlock] = {}
        self.entry: int = 0
        #: While-loop unrolling bound used during construction.
        self.loop_unroll: int = 2

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    @property
    def num_blocks(self) -> int:
        """The paper's ``|FG|`` for this file."""
        return len(self.blocks)

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def paths(self, max_paths: int = 4096) -> Iterator[list[int]]:
        """All acyclic entry-to-terminal block paths (DFS order).

        The mini-PHP subset has no loops, so the graph is a DAG and the
        enumeration terminates; ``max_paths`` guards against
        combinatorial blowup in branch-heavy files.
        """
        emitted = 0
        stack: list[tuple[int, list[int]]] = [(self.entry, [self.entry])]
        while stack:
            block_id, path = stack.pop()
            block = self.blocks[block_id]
            successors = block.successors()
            if not successors:
                yield path
                emitted += 1
                if emitted >= max_paths:
                    return
                continue
            for successor in reversed(successors):
                if successor in path:
                    raise ValueError("cycle in CFG; loops are not supported")
                stack.append((successor, path + [successor]))

    def __repr__(self) -> str:
        return f"<Cfg blocks={self.num_blocks}>"


def build_cfg(program: Program, loop_unroll: int = 2) -> Cfg:
    """Construct the CFG of a parsed program.

    ``loop_unroll`` bounds how many iterations of each ``while`` loop
    are represented (see :class:`repro.php.ast.While`).
    """
    cfg = Cfg()
    cfg.loop_unroll = loop_unroll
    entry = cfg.new_block()
    cfg.entry = entry.block_id
    final = _lower_block(cfg, program.body, entry)
    # `final` is the open block at program end; it is terminal.
    del final
    return cfg


def _lower_block(cfg: Cfg, block: Block, current: BasicBlock) -> Optional[BasicBlock]:
    """Lower statements into ``current``; returns the open successor
    block, or None if control definitely exits."""
    for statement in block.statements:
        if current is None:
            # Unreachable code after exit: keep measuring blocks the
            # way a flow-graph builder would (a fresh, unentered block).
            current = cfg.new_block()
        current = _lower_statement(cfg, statement, current)
    return current


def _lower_statement(
    cfg: Cfg, statement: Stmt, current: BasicBlock
) -> Optional[BasicBlock]:
    if isinstance(statement, Assign) and isinstance(statement.value, Ternary):
        # $x = c ? a : b  lowers to  if (c) { $x = a; } else { $x = b; }
        # so symbolic execution stays path-sensitive over ternaries.
        ternary = statement.value
        lowered = If(
            statement.line,
            ternary.condition,
            Block(statement.line, (Assign(statement.line, statement.target, ternary.then_value),)),
            Block(statement.line, (Assign(statement.line, statement.target, ternary.else_value),)),
        )
        return _lower_statement(cfg, lowered, current)
    if isinstance(statement, (Assign, ExprStmt, Echo)):
        current.statements.append(statement)
        return current
    if isinstance(statement, Exit):
        current.statements.append(statement)
        return None
    if isinstance(statement, If):
        current.condition = statement.condition
        then_entry = cfg.new_block()
        current.true_successor = then_entry.block_id
        then_exit = _lower_block(cfg, statement.then_body, then_entry)
        if statement.else_body is not None:
            else_entry = cfg.new_block()
            current.false_successor = else_entry.block_id
            else_exit = _lower_block(cfg, statement.else_body, else_entry)
        else:
            else_exit = None
        join = cfg.new_block()
        if statement.else_body is None:
            current.false_successor = join.block_id
        if then_exit is not None:
            then_exit.true_successor = join.block_id
        if else_exit is not None:
            else_exit.true_successor = join.block_id
        return join
    if isinstance(statement, While):
        return _lower_statement(cfg, _unroll(statement, cfg.loop_unroll), current)
    if isinstance(statement, Block):
        return _lower_block(cfg, statement, current)
    raise TypeError(f"unknown statement {type(statement).__name__}")


def _unroll(loop: While, depth: int) -> Stmt:
    """Bounded unrolling: k nested ifs, each guarding one iteration."""
    if depth <= 0:
        return Block(loop.line, ())
    inner = _unroll(loop, depth - 1)
    body = Block(loop.body.line, loop.body.statements + (inner,))
    return If(loop.line, loop.condition, body, None)
