"""Recursive-descent parser for the mini-PHP subset.

Two desugarings happen here so later stages never see them:

* double-quoted interpolation — ``"nid_$newsid"`` becomes a
  :class:`~repro.php.ast.ConcatExpr` of literals and variable refs;
* ``.=`` compound assignment — ``$q .= $x`` becomes
  ``$q = $q . $x``.

``$_GET['k']`` / ``$_POST['k']`` / ``$_REQUEST['k']`` / ``$_COOKIE['k']``
index expressions become :class:`~repro.php.ast.InputRef` nodes, the
untrusted inputs the analysis solves for.
"""

from __future__ import annotations

from .ast import (
    Assign,
    Block,
    BoolLit,
    BoolOp,
    Call,
    Compare,
    ConcatExpr,
    Echo,
    Exit,
    Expr,
    ExprStmt,
    If,
    InputRef,
    Not,
    PregMatch,
    Program,
    Stmt,
    StringLit,
    Ternary,
    VarRef,
    While,
)
from .lexer import PhpSyntaxError, Token, tokenize

__all__ = ["parse_php", "PhpSyntaxError"]

_INPUT_ARRAYS = {
    "_GET": "GET",
    "_POST": "POST",
    "_REQUEST": "REQUEST",
    "_COOKIE": "COOKIE",
}


def parse_php(text: str, source_name: str = "<script>") -> Program:
    """Parse one PHP file into a :class:`~repro.php.ast.Program`."""
    return _Parser(tokenize(text)).parse_program(source_name)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def take(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "end":
            self.pos += 1
        return token

    def expect_punct(self, value: str) -> Token:
        token = self.take()
        if not token.is_punct(value):
            raise PhpSyntaxError(
                token.line, f"expected {value!r}, found {token.value!r}"
            )
        return token

    def error(self, message: str) -> PhpSyntaxError:
        return PhpSyntaxError(self.peek().line, message)

    # -- statements ------------------------------------------------------

    def parse_program(self, source_name: str) -> Program:
        statements: list[Stmt] = []
        first_line = self.peek().line
        while self.peek().kind != "end":
            statements.append(self.parse_statement())
        return Program(Block(first_line, tuple(statements)), source_name)

    def parse_statement(self) -> Stmt:
        token = self.peek()
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("switch"):
            return self.parse_switch()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("exit") or token.is_keyword("die"):
            return self.parse_exit()
        if token.is_keyword("echo") or token.is_keyword("print"):
            return self.parse_echo()
        if token.kind == "variable" and token.value not in _INPUT_ARRAYS:
            nxt = self.peek(1)
            if nxt.is_punct("=") or nxt.is_punct(".="):
                return self.parse_assign()
        expr = self.parse_expr()
        self.expect_punct(";")
        return ExprStmt(expr.line, expr)

    def parse_block(self) -> Block:
        open_token = self.expect_punct("{")
        statements: list[Stmt] = []
        while not self.peek().is_punct("}"):
            if self.peek().kind == "end":
                raise self.error("unterminated block")
            statements.append(self.parse_statement())
        self.expect_punct("}")
        return Block(open_token.line, tuple(statements))

    def parse_body(self) -> Block:
        """A brace block, or a single statement promoted to a block."""
        if self.peek().is_punct("{"):
            return self.parse_block()
        statement = self.parse_statement()
        return Block(statement.line, (statement,))

    def parse_if(self) -> If:
        if_token = self.take()
        self.expect_punct("(")
        condition = self.parse_expr()
        self.expect_punct(")")
        then_body = self.parse_body()
        else_body = None
        nxt = self.peek()
        if nxt.is_keyword("elseif"):
            # elseif desugars to else { if ... }.
            nested = self.parse_if_from_elseif()
            else_body = Block(nested.line, (nested,))
        elif nxt.is_keyword("else"):
            self.take()
            if self.peek().is_keyword("if"):
                nested = self.parse_if()
                else_body = Block(nested.line, (nested,))
            else:
                else_body = self.parse_body()
        return If(if_token.line, condition, then_body, else_body)

    def parse_if_from_elseif(self) -> If:
        token = self.take()  # 'elseif'
        self.expect_punct("(")
        condition = self.parse_expr()
        self.expect_punct(")")
        then_body = self.parse_body()
        else_body = None
        nxt = self.peek()
        if nxt.is_keyword("elseif"):
            nested = self.parse_if_from_elseif()
            else_body = Block(nested.line, (nested,))
        elif nxt.is_keyword("else"):
            self.take()
            else_body = self.parse_body()
        return If(token.line, condition, then_body, else_body)

    def parse_switch(self) -> Stmt:
        """``switch`` desugars into an if/elseif chain.

        Fall-through is honoured: a case body without ``break`` also
        executes the following case's (already fall-through-expanded)
        body.  ``break`` inside a case body is consumed; loops are not
        supported, so there is nothing else for it to mean.
        """
        switch_token = self.take()
        self.expect_punct("(")
        subject = self.parse_expr()
        self.expect_punct(")")
        self.expect_punct("{")

        arms: list[tuple[Expr | None, list[Stmt], bool]] = []
        while not self.peek().is_punct("}"):
            token = self.peek()
            if token.is_keyword("case"):
                self.take()
                guard = self.parse_expr()
                self.expect_punct(":")
                body, broke = self.parse_case_body()
                arms.append((guard, body, broke))
            elif token.is_keyword("default"):
                self.take()
                self.expect_punct(":")
                body, broke = self.parse_case_body()
                arms.append((None, body, broke))
            else:
                raise PhpSyntaxError(token.line, "expected 'case' or 'default'")
        self.expect_punct("}")

        # Expand fall-through back to front, then chain the conditions.
        expanded: list[tuple[Expr | None, list[Stmt]]] = []
        carried: list[Stmt] = []
        for guard, body, broke in reversed(arms):
            carried = body + ([] if broke else carried)
            expanded.append((guard, carried))
        expanded.reverse()

        chain: Stmt | None = None
        for guard, body in reversed(expanded):
            block = Block(switch_token.line, tuple(body))
            if guard is None:
                # `default` acts as the final else (it is expected last;
                # an earlier default still catches every non-match).
                chain = block
                continue
            condition = Compare(switch_token.line, "==", subject, guard)
            else_body = None
            if chain is not None:
                if isinstance(chain, Block):
                    else_body = chain
                else:
                    else_body = Block(chain.line, (chain,))
            chain = If(switch_token.line, condition, block, else_body)
        return chain if chain is not None else Block(switch_token.line, ())

    def parse_case_body(self) -> tuple[list[Stmt], bool]:
        """Statements of one case arm; True if it ended with ``break``."""
        statements: list[Stmt] = []
        while True:
            token = self.peek()
            if (
                token.is_keyword("case")
                or token.is_keyword("default")
                or token.is_punct("}")
                or token.kind == "end"
            ):
                return statements, False
            if token.is_keyword("break"):
                self.take()
                self.expect_punct(";")
                return statements, True
            statements.append(self.parse_statement())

    def parse_while(self) -> While:
        token = self.take()
        self.expect_punct("(")
        condition = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_body()
        return While(token.line, condition, body)

    def parse_exit(self) -> Exit:
        token = self.take()
        if self.peek().is_punct("("):
            self.take()
            if not self.peek().is_punct(")"):
                self.parse_expr()  # exit message: evaluated, ignored
            self.expect_punct(")")
        self.expect_punct(";")
        return Exit(token.line)

    def parse_echo(self) -> Echo:
        token = self.take()
        value = self.parse_expr()
        while self.peek().is_punct(","):
            self.take()
            extra = self.parse_expr()
            value = ConcatExpr(token.line, _concat_parts(value) + _concat_parts(extra))
        self.expect_punct(";")
        return Echo(token.line, value)

    def parse_assign(self) -> Assign:
        target = self.take()
        op = self.take()
        value = self.parse_expr()
        self.expect_punct(";")
        if op.is_punct(".="):
            previous = VarRef(target.line, target.value)
            value = ConcatExpr(
                target.line, _concat_parts(previous) + _concat_parts(value)
            )
        return Assign(target.line, target.value, value)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> Expr:
        condition = self.parse_or()
        if self.peek().is_punct("?"):
            token = self.take()
            then_value = self.parse_expr()
            self.expect_punct(":")
            else_value = self.parse_expr()
            return Ternary(token.line, condition, then_value, else_value)
        return condition

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.peek().is_punct("||"):
            token = self.take()
            right = self.parse_and()
            left = BoolOp(token.line, "or", left, right)
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.peek().is_punct("&&"):
            token = self.take()
            right = self.parse_not()
            left = BoolOp(token.line, "and", left, right)
        return left

    def parse_not(self) -> Expr:
        if self.peek().is_punct("!"):
            token = self.take()
            return Not(token.line, self.parse_not())
        return self.parse_compare()

    def parse_compare(self) -> Expr:
        left = self.parse_concat()
        token = self.peek()
        if token.kind == "punct" and token.value in ("==", "===", "!=", "!=="):
            self.take()
            right = self.parse_concat()
            op = "==" if token.value in ("==", "===") else "!="
            return Compare(token.line, op, left, right)
        return left

    def parse_concat(self) -> Expr:
        parts = [self.parse_primary()]
        while self.peek().is_punct("."):
            self.take()
            parts.append(self.parse_primary())
        if len(parts) == 1:
            return parts[0]
        flattened: tuple[Expr, ...] = ()
        for part in parts:
            flattened += _concat_parts(part)
        return ConcatExpr(parts[0].line, flattened)

    def parse_primary(self) -> Expr:
        token = self.take()
        if token.kind == "string":
            return StringLit(token.line, token.value)
        if token.kind == "dstring":
            return _desugar_interpolation(token)
        if token.kind == "int":
            return StringLit(token.line, token.value)
        if token.kind == "variable":
            if token.value in _INPUT_ARRAYS:
                return self.parse_input_ref(token)
            return VarRef(token.line, token.value)
        if token.kind == "ident":
            lowered = token.value.lower()
            if lowered == "true":
                return BoolLit(token.line, True)
            if lowered == "false":
                return BoolLit(token.line, False)
            if self.peek().is_punct("("):
                return self.parse_call(token)
            raise PhpSyntaxError(token.line, f"unexpected identifier {token.value!r}")
        if token.is_punct("("):
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        raise PhpSyntaxError(token.line, f"unexpected token {token.value!r}")

    def parse_input_ref(self, token: Token) -> InputRef:
        self.expect_punct("[")
        key = self.take()
        if key.kind not in ("string", "dstring"):
            raise PhpSyntaxError(key.line, "input array index must be a string")
        self.expect_punct("]")
        return InputRef(token.line, _INPUT_ARRAYS[token.value], key.value)

    def parse_call(self, name: Token) -> Expr:
        self.expect_punct("(")
        args: list[Expr] = []
        if not self.peek().is_punct(")"):
            args.append(self.parse_expr())
            while self.peek().is_punct(","):
                self.take()
                args.append(self.parse_expr())
        self.expect_punct(")")
        if name.value.lower() == "preg_match":
            if len(args) != 2:
                raise PhpSyntaxError(name.line, "preg_match takes two arguments")
            pattern = args[0]
            if not isinstance(pattern, StringLit):
                raise PhpSyntaxError(
                    name.line, "preg_match pattern must be a string literal"
                )
            return PregMatch(name.line, pattern.value, args[1])
        return Call(name.line, name.value, tuple(args))


def _concat_parts(expr: Expr) -> tuple[Expr, ...]:
    if isinstance(expr, ConcatExpr):
        return expr.parts
    return (expr,)


def _desugar_interpolation(token: Token) -> Expr:
    """Turn a raw double-quoted body into literals and variable refs."""
    raw = token.value
    parts: list[Expr] = []
    buffer: list[str] = []
    pos = 0
    length = len(raw)
    escapes = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "$": "$"}

    def flush() -> None:
        if buffer:
            parts.append(StringLit(token.line, "".join(buffer)))
            buffer.clear()

    while pos < length:
        ch = raw[pos]
        if ch == "\\" and pos + 1 < length:
            buffer.append(escapes.get(raw[pos + 1], "\\" + raw[pos + 1]))
            pos += 2
            continue
        if ch == "$" and pos + 1 < length:
            body = raw[pos + 1 :]
            braced = body.startswith("{")
            if braced:
                body = body[1:]
            end = 0
            while end < len(body) and (body[end].isalnum() or body[end] == "_"):
                end += 1
            if end == 0:
                buffer.append(ch)
                pos += 1
                continue
            name = body[:end]
            consumed = 1 + end + (2 if braced else 0)
            if braced:
                if end >= len(body) or body[end] != "}":
                    raise PhpSyntaxError(token.line, "unterminated ${...}")
            flush()
            if name in _INPUT_ARRAYS:
                raise PhpSyntaxError(
                    token.line, "superglobal interpolation is not supported"
                )
            parts.append(VarRef(token.line, name))
            pos += consumed
            continue
        buffer.append(ch)
        pos += 1
    flush()
    if not parts:
        return StringLit(token.line, "")
    if len(parts) == 1:
        return parts[0]
    return ConcatExpr(token.line, tuple(parts))
