"""Lexer for the mini-PHP subset.

Hand-rolled, line-tracking, with PHP's two string syntaxes: single
quotes (no interpolation, ``\\'`` and ``\\\\`` escapes) and double
quotes (``$name`` interpolation, resolved later by the parser — the
lexer records the raw text plus a flag).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhpSyntaxError", "Token", "tokenize"]


class PhpSyntaxError(ValueError):
    """A lexical or syntactic error, with the offending line number."""

    def __init__(self, line: int, message: str):
        self.line = line
        super().__init__(f"line {line}: {message}")


@dataclass(frozen=True)
class Token:
    kind: str  # ident, variable, string, dstring, int, punct, end
    value: str
    line: int

    def is_punct(self, value: str) -> bool:
        return self.kind == "punct" and self.value == value

    def is_keyword(self, word: str) -> bool:
        return self.kind == "ident" and self.value.lower() == word


_TWO_CHAR = {"==", "!=", "&&", "||", ".=", "=>"}
_THREE_CHAR = {"===", "!=="}
_SINGLE = set("(){}[];,.!=&|<>+-*/?:")


def tokenize(text: str) -> list[Token]:
    """Tokenize one PHP file (``<?php`` tags optional)."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    length = len(text)

    while pos < length:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if text.startswith("<?php", pos):
            pos += 5
            continue
        if text.startswith("<?", pos):
            pos += 2
            continue
        if text.startswith("?>", pos):
            pos += 2
            continue
        if text.startswith("//", pos) or ch == "#":
            while pos < length and text[pos] != "\n":
                pos += 1
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end < 0:
                raise PhpSyntaxError(line, "unterminated block comment")
            line += text.count("\n", pos, end)
            pos = end + 2
            continue
        if ch == "$":
            end = pos + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == pos + 1:
                raise PhpSyntaxError(line, "lone '$'")
            tokens.append(Token("variable", text[pos + 1 : end], line))
            pos = end
            continue
        if ch == "'":
            value, pos, line = _scan_string(text, pos, line, quote="'")
            tokens.append(Token("string", value, line))
            continue
        if ch == '"':
            raw, pos, line = _scan_raw_dstring(text, pos, line)
            tokens.append(Token("dstring", raw, line))
            continue
        if ch.isdigit():
            end = pos
            while end < length and text[end].isdigit():
                end += 1
            tokens.append(Token("int", text[pos:end], line))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            tokens.append(Token("ident", text[pos:end], line))
            pos = end
            continue
        three = text[pos : pos + 3]
        if three in _THREE_CHAR:
            tokens.append(Token("punct", three, line))
            pos += 3
            continue
        two = text[pos : pos + 2]
        if two in _TWO_CHAR:
            tokens.append(Token("punct", two, line))
            pos += 2
            continue
        if ch in _SINGLE:
            tokens.append(Token("punct", ch, line))
            pos += 1
            continue
        raise PhpSyntaxError(line, f"unexpected character {ch!r}")

    tokens.append(Token("end", "", line))
    return tokens


def _scan_string(
    text: str, pos: int, line: int, quote: str
) -> tuple[str, int, int]:
    """Single-quoted string: only ``\\'`` and ``\\\\`` are escapes."""
    out: list[str] = []
    cursor = pos + 1
    while cursor < len(text):
        ch = text[cursor]
        if ch == quote:
            return "".join(out), cursor + 1, line
        if ch == "\\" and cursor + 1 < len(text) and text[cursor + 1] in (quote, "\\"):
            out.append(text[cursor + 1])
            cursor += 2
            continue
        if ch == "\n":
            line += 1
        out.append(ch)
        cursor += 1
    raise PhpSyntaxError(line, "unterminated string literal")


def _scan_raw_dstring(text: str, pos: int, line: int) -> tuple[str, int, int]:
    """Double-quoted string: capture raw contents, escapes intact.

    Interpolation (``$var``) is resolved by the parser, which needs the
    raw text.
    """
    cursor = pos + 1
    start = cursor
    while cursor < len(text):
        ch = text[cursor]
        if ch == '"':
            return text[start:cursor], cursor + 1, line
        if ch == "\\" and cursor + 1 < len(text):
            cursor += 2
            continue
        if ch == "\n":
            line += 1
        cursor += 1
    raise PhpSyntaxError(line, "unterminated string literal")
