"""Mini-PHP front end: lexing, parsing, CFGs, symbolic execution."""

from .ast import Program
from .cfg import BasicBlock, Cfg, build_cfg
from .lexer import PhpSyntaxError, tokenize
from .parser import parse_php
from .symexec import DEFAULT_SINKS, SANITIZERS, SinkQuery, SymbolicExecutor

__all__ = [
    "Program",
    "tokenize",
    "parse_php",
    "PhpSyntaxError",
    "Cfg",
    "BasicBlock",
    "build_cfg",
    "SymbolicExecutor",
    "SinkQuery",
    "DEFAULT_SINKS",
    "SANITIZERS",
]
