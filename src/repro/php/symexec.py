"""Path-sensitive symbolic execution producing RMA constraints.

This is the paper's "simple prototype program analysis that uses
symbolic execution to set up a system of string variable constraints
based on paths that lead to the defect" (Sec. 4).  For every acyclic
CFG path reaching a sink call (``query(...)`` by default) it emits one
:class:`SinkQuery`: the constraints collected along the path plus the
final constraint that the sink argument lie in the attack language.

Symbolic values are terms of the core grammar — concatenations of
string constants and input variables — so the translation to the
decision procedure is direct:

* ``preg_match('/re/', e)`` taken *true* adds ``e ⊆ L(search re)``;
  taken *false* adds ``e ⊆ complement``.
* ``$x == 'lit'`` adds ``x ⊆ {lit}`` (or the complement for ``!=``).
* known sanitizers (``addslashes`` etc.) havoc their result into a
  fresh variable constrained to be quote-free — a sound model for
  SQL-injection reachability (see DESIGN.md);
* unknown calls havoc into an unconstrained fresh variable.

Disjunctive branch conditions (``!(a && b)`` paths) contribute no
constraint rather than a disjunction; this matches the prototype's
"simple" symbolic execution and only ever *under*-constrains, which
the solver then resolves by solving the remaining system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..automata.alphabet import BYTE_ALPHABET, Alphabet
from ..automata.dfa import complement
from ..automata.nfa import Nfa
from ..constraints.terms import ConcatTerm, Const, Problem, Subset, Term, Var
from ..regex import parse_exact, preg_pattern, to_nfa
from .ast import (
    Assign,
    BoolLit,
    BoolOp,
    Call,
    Compare,
    ConcatExpr,
    Echo,
    Expr,
    ExprStmt,
    InputRef,
    Not,
    PregMatch,
    Program,
    Stmt,
    StringLit,
    Ternary,
    VarRef,
)
from .cfg import Cfg, build_cfg

__all__ = ["SinkQuery", "SymbolicExecutor", "DEFAULT_SINKS", "SANITIZERS"]

#: Functions whose argument flows into the database.
DEFAULT_SINKS = frozenset({"query", "mysql_query", "mysqli_query", "pg_query"})

#: Functions modelled as producing quote-free output.
SANITIZERS = frozenset(
    {"addslashes", "mysql_real_escape_string", "mysqli_real_escape_string",
     "pg_escape_string", "intval"}
)


@dataclass
class SinkQuery:
    """One (path, sink) pair and the constraint system describing it."""

    path: list[int]
    sink_line: int
    constraints: list[Subset]
    inputs: list[str]
    alphabet: Alphabet
    #: Transducer-derived values (``transducers=True`` mode):
    #: result-variable name → (the transducer, the source term).  The
    #: analyzer maps solved result languages back through ``preimage``.
    derived: dict[str, tuple[object, Term]] = field(default_factory=dict)

    @property
    def num_constraints(self) -> int:
        """The paper's ``|C|`` for this query."""
        return len(self.constraints)

    def problem(self) -> Problem:
        """The RMA instance for this sink (solve with ``query=inputs``)."""
        return Problem(list(self.constraints), alphabet=self.alphabet)


class _Infeasible(Exception):
    """Raised when a path contradicts a concrete boolean."""


class SymbolicExecutor:
    """Symbolically executes every path of one program."""

    def __init__(
        self,
        attack: Nfa,
        sinks: frozenset[str] = DEFAULT_SINKS,
        alphabet: Alphabet = BYTE_ALPHABET,
        max_paths: int = 4096,
        transducers: bool = False,
    ):
        self.attack = attack
        self.sinks = sinks
        self.alphabet = alphabet
        self.max_paths = max_paths
        #: Precise sanitizer mode (paper Sec. 5 future work): model
        #: known string functions as finite-state transducers instead
        #: of havocking.  The sanitized value is constrained to the
        #: transducer's output language and recorded in
        #: :attr:`SinkQuery.derived` for pre-image refinement.
        self.transducers = transducers
        self._const_pool: dict[tuple[str, str], Const] = {}
        self._fresh_counter = 0
        self._attack_const = Const("attack", attack, source="<attack spec>")
        self._image_consts: dict[str, Const] = {}
        self._current_derived: dict[str, tuple[object, Term]] = {}

    # -- constant interning ----------------------------------------------

    def _literal_const(self, text: str) -> Const:
        key = ("lit", text)
        if key not in self._const_pool:
            name = f"lit{len(self._const_pool)}"
            self._const_pool[key] = Const.from_literal(name, text, self.alphabet)
        return self._const_pool[key]

    def _pattern_const(self, pattern: str, positive: bool) -> Const:
        key = ("re+" if positive else "re-", pattern)
        if key not in self._const_pool:
            spec = preg_pattern(pattern, self.alphabet)
            machine = to_nfa(spec.search(), self.alphabet)
            if not positive:
                machine = complement(machine)
            name = f"{'re' if positive else 'nre'}{len(self._const_pool)}"
            self._const_pool[key] = Const(
                name, machine, source=f"{'' if positive else '!'}m{pattern}"
            )
        return self._const_pool[key]

    def _not_literal_const(self, text: str) -> Const:
        key = ("nlit", text)
        if key not in self._const_pool:
            machine = complement(Nfa.literal(text, self.alphabet))
            name = f"nlit{len(self._const_pool)}"
            self._const_pool[key] = Const(name, machine, source=f"!{text!r}")
        return self._const_pool[key]

    def _quote_free_const(self) -> Const:
        key = ("spec", "quote-free")
        if key not in self._const_pool:
            machine = to_nfa(parse_exact(r"[^']*", self.alphabet), self.alphabet)
            self._const_pool[key] = Const("quotefree", machine, source="/[^']*/")
        return self._const_pool[key]

    def _fresh_var(self, hint: str) -> Var:
        self._fresh_counter += 1
        return Var(f"tmp{self._fresh_counter}_{hint}")

    # -- main entry ---------------------------------------------------------

    def run(self, program: Program) -> list[SinkQuery]:
        """All (path, sink) constraint systems of ``program``."""
        return self.run_cfg(build_cfg(program))

    def run_cfg(self, cfg: Cfg) -> list[SinkQuery]:
        """All (path, sink) constraint systems of a prebuilt CFG.

        Queries that are syntactically identical — same sink and same
        constraint system — are reported once even when many paths
        share the prefix that reaches the sink (post-sink branching
        would otherwise duplicate them combinatorially).
        """
        queries: list[SinkQuery] = []
        seen: set[tuple] = set()
        for path in cfg.paths(max_paths=self.max_paths):
            try:
                path_queries = self._run_path(cfg, path)
            except _Infeasible:
                continue
            for query in path_queries:
                key = (
                    query.sink_line,
                    tuple(str(c) for c in query.constraints),
                )
                if key not in seen:
                    seen.add(key)
                    queries.append(query)
        return queries

    # -- path execution ----------------------------------------------------

    def _run_path(self, cfg: Cfg, path: list[int]) -> list[SinkQuery]:
        store: dict[str, Term] = {}
        constraints: list[Subset] = []
        inputs: set[str] = set()
        queries: list[SinkQuery] = []
        self._current_derived = {}

        for index, block_id in enumerate(path):
            block = cfg.block(block_id)
            for statement in block.statements:
                self._execute(
                    statement, store, constraints, inputs, queries, path
                )
            if block.condition is not None and index + 1 < len(path):
                taken_true = path[index + 1] == block.true_successor
                self._assume(
                    block.condition, taken_true, store, constraints, inputs
                )
        return queries

    def _execute(
        self,
        statement: Stmt,
        store: dict[str, Term],
        constraints: list[Subset],
        inputs: set[str],
        queries: list[SinkQuery],
        path: list[int],
    ) -> None:
        if isinstance(statement, Assign):
            store[statement.target] = self._eval(
                statement.value, store, constraints, inputs, queries, path
            )
            return
        if isinstance(statement, (ExprStmt, Echo)):
            expr = statement.expr if isinstance(statement, ExprStmt) else statement.value
            self._eval(expr, store, constraints, inputs, queries, path)
            return
        # Exit has no symbolic effect (the CFG already ended the path).

    def _eval(
        self,
        expr: Expr,
        store: dict[str, Term],
        constraints: list[Subset],
        inputs: set[str],
        queries: list[SinkQuery],
        path: list[int],
    ) -> Term:
        if isinstance(expr, StringLit):
            return self._literal_const(expr.value)
        if isinstance(expr, VarRef):
            # Uninitialized variables read as the empty string, as PHP's
            # coercion would (modulo the notice).
            return store.get(expr.name, self._literal_const(""))
        if isinstance(expr, InputRef):
            inputs.add(expr.input_name)
            return Var(expr.input_name)
        if isinstance(expr, ConcatExpr):
            parts = [
                self._eval(p, store, constraints, inputs, queries, path)
                for p in expr.parts
            ]
            return _concat_terms(parts)
        if isinstance(expr, Call):
            return self._eval_call(expr, store, constraints, inputs, queries, path)
        if isinstance(expr, Ternary):
            # Assignments of ternaries were lowered to branches by the
            # CFG builder; a ternary in any other position is havocked.
            self._eval(expr.then_value, store, constraints, inputs, queries, path)
            self._eval(expr.else_value, store, constraints, inputs, queries, path)
            return self._fresh_var("ternary")
        if isinstance(expr, (PregMatch, Compare, Not, BoolOp, BoolLit)):
            # A boolean in value position: its string value is not
            # tracked ("1"/"" in PHP); havoc.
            return self._fresh_var("bool")
        raise TypeError(f"unknown expression {type(expr).__name__}")

    def _eval_call(
        self,
        expr: Call,
        store: dict[str, Term],
        constraints: list[Subset],
        inputs: set[str],
        queries: list[SinkQuery],
        path: list[int],
    ) -> Term:
        args = [
            self._eval(a, store, constraints, inputs, queries, path)
            for a in expr.args
        ]
        name = expr.name.lower()
        if name in self.sinks and args:
            sink_constraints = list(constraints)
            sink_constraints.append(Subset(args[0], self._attack_const))
            queries.append(
                SinkQuery(
                    path=list(path),
                    sink_line=expr.line,
                    constraints=sink_constraints,
                    inputs=sorted(inputs),
                    alphabet=self.alphabet,
                    derived=dict(self._current_derived),
                )
            )
            return self._fresh_var("result")
        if self.transducers:
            modelled = self._eval_transducer_call(expr, args, constraints)
            if modelled is not None:
                return modelled
        if name in SANITIZERS:
            result = self._fresh_var(name)
            constraints.append(Subset(result, self._quote_free_const()))
            return result
        if name in ("trim", "strtolower", "strtoupper", "stripslashes"):
            # Length/case transforms: approximate as identity — sound
            # enough for quote-reachability (they preserve quotes).
            return args[0] if args else self._literal_const("")
        return self._fresh_var(name)

    def _eval_transducer_call(
        self,
        expr: Call,
        args: list[Term],
        constraints: list[Subset],
    ) -> Optional[Term]:
        """Model a call as a transducer application, if we know one.

        The result is a fresh variable constrained to the transducer's
        output language ``T(Σ*)`` and recorded (with its source term)
        so the analyzer can later pull the solved language back through
        ``preimage``.  Returns None for unmodelled calls.
        """
        from ..analysis.sanitizers import output_language, transducer_for

        name = expr.name.lower()
        literal_args: Optional[list[str]] = None
        subject_index = 0
        if name == "str_replace":
            if len(expr.args) != 3 or not all(
                isinstance(a, StringLit) for a in expr.args[:2]
            ):
                return None
            literal_args = [expr.args[0].value, expr.args[1].value]
            subject_index = 2
        fst = transducer_for(name, self.alphabet, args=literal_args)
        if fst is None or len(args) <= subject_index:
            return None
        result = self._fresh_var(name)
        key = name if literal_args is None else f"{name}:{literal_args}"
        if key not in self._image_consts:
            machine = output_language(fst)
            self._image_consts[key] = Const(
                f"img_{len(self._image_consts)}_{name}",
                machine,
                source=f"{name}(Σ*)",
            )
        constraints.append(Subset(result, self._image_consts[key]))
        self._current_derived[result.name] = (fst, args[subject_index])
        return result

    # -- branch conditions ---------------------------------------------------

    def _assume(
        self,
        condition: Expr,
        truth: bool,
        store: dict[str, Term],
        constraints: list[Subset],
        inputs: set[str],
    ) -> None:
        if isinstance(condition, Not):
            self._assume(condition.operand, not truth, store, constraints, inputs)
            return
        if isinstance(condition, BoolLit):
            if condition.value != truth:
                raise _Infeasible()
            return
        if isinstance(condition, BoolOp):
            if (condition.op == "and" and truth) or (
                condition.op == "or" and not truth
            ):
                # De Morgan-conjunctive cases: both sides share `truth`.
                self._assume(condition.left, truth, store, constraints, inputs)
                self._assume(condition.right, truth, store, constraints, inputs)
            # Disjunctive outcomes contribute no constraint (see module
            # docs): the prototype stays simple, as in the paper.
            return
        if isinstance(condition, PregMatch):
            subject = self._eval_pure(condition.subject, store, inputs)
            if subject is None:
                return
            constraints.append(
                Subset(subject, self._pattern_const(condition.pattern, truth))
            )
            return
        if isinstance(condition, Compare):
            wanted_equal = (condition.op == "==") == truth
            left = self._eval_pure(condition.left, store, inputs)
            right = self._eval_pure(condition.right, store, inputs)
            literal: Optional[str] = None
            subject: Optional[Term] = None
            if isinstance(condition.right, StringLit) and left is not None:
                literal, subject = condition.right.value, left
            elif isinstance(condition.left, StringLit) and right is not None:
                literal, subject = condition.left.value, right
            if literal is None or subject is None:
                return
            if isinstance(subject, Const):
                # Concrete comparison: decide it now.
                concrete = subject.machine.accepts(literal)
                if concrete != wanted_equal:
                    raise _Infeasible()
                return
            const = (
                self._literal_const(literal)
                if wanted_equal
                else self._not_literal_const(literal)
            )
            constraints.append(Subset(subject, const))
            return
        # Truthiness of strings/calls (e.g. isset): no string constraint.

    def _eval_pure(
        self, expr: Expr, store: dict[str, Term], inputs: set[str]
    ) -> Optional[Term]:
        """Evaluate an expression with no side effects; None if the
        expression involves havocked values we cannot constrain."""
        if isinstance(expr, StringLit):
            return self._literal_const(expr.value)
        if isinstance(expr, VarRef):
            return store.get(expr.name, self._literal_const(""))
        if isinstance(expr, InputRef):
            inputs.add(expr.input_name)
            return Var(expr.input_name)
        if isinstance(expr, ConcatExpr):
            parts = []
            for part in expr.parts:
                value = self._eval_pure(part, store, inputs)
                if value is None:
                    return None
                parts.append(value)
            return _concat_terms(parts)
        return None


def _concat_terms(parts: list[Term]) -> Term:
    """Flatten and literal-fuse a concatenation of terms."""
    flat: list[Term] = []
    for part in parts:
        if isinstance(part, ConcatTerm):
            flat.extend(part.parts)
        else:
            flat.append(part)
    # Drop empty-string literals; they are concatenation identities.
    flat = [
        p
        for p in flat
        if not (isinstance(p, Const) and p.source == repr(""))
    ]
    if not flat:
        # Everything was the empty string; any one of the (pooled)
        # empty constants represents the result.
        return parts[0]
    if len(flat) == 1:
        return flat[0]
    return ConcatTerm(tuple(flat))
